"""The queueing simulation: latency accounting, saturation, round trips.

Synthetic service-time sequences make every expectation exact: with
deterministic arrivals and constant service times the whole timeline is
hand-checkable, and the classic queueing shapes (empty queues at low
load, superlinear p99 towards saturation, achieved < offered beyond
capacity) must emerge from the measured-service-time model.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.config import ARRIVAL_PROCESSES as CONFIG_ARRIVALS
from repro.sim.config import RunConfig
from repro.svc.arrival import ARRIVAL_PROCESSES as SVC_ARRIVALS
from repro.svc.arrival import poisson_arrivals
from repro.svc.dispatch import make_dispatcher
from repro.svc.service import ServiceResult, simulate_service


def run_service(service, arrivals, keys=None, cores=1, policy="round_robin",
                rate=0.01, load=0.7, capacity=0.0143):
    if keys is None:
        keys = [0] * len(arrivals)
    return simulate_service(
        service, arrivals, keys, make_dispatcher(policy, cores),
        process="poisson", offered_load=load, arrival_rate=rate,
        closed_loop_throughput=capacity)


class TestConstants:
    def test_config_open_processes_match_svc(self):
        """RunConfig's open-loop process names must be exactly what the
        svc factory can build (plus the "closed" sentinel)."""
        assert tuple(CONFIG_ARRIVALS) == ("closed",) + tuple(SVC_ARRIVALS)


class TestExactTimelines:
    def test_idle_server_latency_is_pure_service_time(self):
        # arrivals far apart: no queueing, latency == service cycles
        result = run_service([[100]], [0.0, 1000.0, 2000.0])
        assert result.mean_queue_delay == 0.0
        assert result.mean_latency == 100.0
        assert result.latency["p99"] == 100.0
        assert result.per_core[0]["max_queue_depth"] == 1

    def test_back_to_back_arrivals_queue_fifo(self):
        # three requests at t=0, one server, 100-cycle service:
        # latencies 100, 200, 300; queue delays 0, 100, 200
        result = run_service([[100]], [0.0, 0.0, 0.0])
        assert result.makespan == 300.0
        assert result.mean_latency == 200.0
        assert result.mean_queue_delay == 100.0
        assert result.per_core[0]["max_queue_depth"] == 3
        assert result.per_core[0]["busy_fraction"] == 1.0

    def test_service_sequence_cycles_in_order(self):
        # service times 10 then 30, reused modulo: 10,30,10 with gaps
        result = run_service([[10, 30]], [0.0, 100.0, 200.0])
        assert result.mean_latency == pytest.approx((10 + 30 + 10) / 3)

    def test_two_cores_round_robin_split(self):
        result = run_service([[100], [100]], [0.0, 0.0, 0.0, 0.0],
                             cores=2)
        # each core serves two back-to-back requests
        assert [c["requests"] for c in result.per_core] == [2, 2]
        assert result.makespan == 200.0
        assert result.mean_latency == 150.0

    def test_jsq_balances_where_round_robin_cannot(self):
        # core 0 is slow (1000 cycles), core 1 fast (10).  The third
        # request lands while core 0 is still busy and core 1 is idle:
        # jsq sees the empty queue (latency 10), oblivious round-robin
        # walks into the busy core (latency 1980)
        arrivals = [0.0, 0.0, 20.0]
        rr = run_service([[1000], [10]], arrivals, cores=2)
        jsq = run_service([[1000], [10]], arrivals, cores=2,
                          policy="jsq")
        assert jsq.mean_latency < rr.mean_latency
        assert jsq.latency["p50"] < rr.latency["p50"]

    def test_key_hash_affinity(self):
        # all requests carry one key -> one core does all the work
        result = run_service([[100], [100]], [0.0, 50.0, 100.0],
                             keys=[5, 5, 5], cores=2, policy="key_hash")
        requests = sorted(c["requests"] for c in result.per_core)
        assert requests == [0, 3]


class TestQueueingShapes:
    def _poisson(self, load, seed=3, n=2000):
        service = 100  # cycles -> capacity 0.01 ops/cycle
        rate = load * 0.01
        arrivals = poisson_arrivals(rate, n, seed=seed)
        return run_service([[service]], arrivals, rate=rate, load=load,
                           capacity=0.01)

    def test_p99_rises_superlinearly_towards_saturation(self):
        low = self._poisson(0.3).latency["p99"]
        mid = self._poisson(0.7).latency["p99"]
        high = self._poisson(0.95).latency["p99"]
        assert high > mid > low
        assert (high - mid) > (mid - low)

    def test_overload_caps_achieved_throughput(self):
        over = self._poisson(2.0)
        # the single 100-cycle server can do at most 0.01 ops/cycle
        assert over.arrival_rate == pytest.approx(0.02)
        assert over.achieved_throughput <= 0.01 * 1.001
        assert over.achieved_throughput < over.arrival_rate
        assert over.per_core[0]["busy_fraction"] > 0.999

    def test_stable_load_achieves_offered(self):
        ok = self._poisson(0.5)
        assert ok.achieved_throughput == pytest.approx(ok.arrival_rate,
                                                       rel=0.1)


class TestValidation:
    def test_core_sequence_count_must_match(self):
        with pytest.raises(ConfigError):
            run_service([[10], [10]], [0.0], cores=1)

    def test_empty_service_sequence_rejected(self):
        with pytest.raises(ConfigError):
            run_service([[]], [0.0])

    def test_misaligned_keys_rejected(self):
        with pytest.raises(ConfigError):
            run_service([[10]], [0.0, 1.0], keys=[1])

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ConfigError):
            run_service([[10]], [5.0, 1.0])

    def test_zero_requests_rejected(self):
        with pytest.raises(ConfigError):
            run_service([[10]], [])


class TestServiceResultSerialisation:
    def test_exact_json_round_trip(self):
        result = run_service([[100, 150]], [0.0, 10.0, 400.0])
        clone = ServiceResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.to_dict() == result.to_dict()
        assert clone.p99 == result.p99
        assert clone.num_cores == 1
        hist = clone.latency_histogram()
        assert hist.count == 3

    def test_unknown_field_rejected(self):
        result = run_service([[100]], [0.0])
        data = result.to_dict()
        data["bogus"] = 1
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            ServiceResult.from_dict(data)


class TestRunConfigServiceFields:
    def test_closed_is_the_default(self):
        config = RunConfig()
        assert config.arrival_process == "closed"
        assert config.effective_service_requests == config.measure_ops

    def test_effective_requests_scale_with_cores(self):
        config = RunConfig(num_cores=3, measure_ops=100,
                           arrival_process="poisson")
        assert config.effective_service_requests == 300
        explicit = RunConfig(service_requests=42)
        assert explicit.effective_service_requests == 42

    def test_open_loop_label_carries_traffic(self):
        config = RunConfig(frontend="stlt", num_cores=2,
                           arrival_process="mmpp", offered_load=0.85,
                           dispatch_policy="jsq")
        assert config.label.endswith("x2c@mmpp-0.85-jsq")
        plain = RunConfig(arrival_process="poisson", offered_load=0.5)
        assert plain.label.endswith("@poisson-0.5")

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(arrival_process="diurnal")
        with pytest.raises(ConfigError):
            RunConfig(dispatch_policy="random")
        with pytest.raises(ConfigError):
            RunConfig(offered_load=0.0)
        with pytest.raises(ConfigError):
            RunConfig(offered_load=4.5)
        with pytest.raises(ConfigError):
            RunConfig(service_requests=0)
