"""End-to-end determinism of the open-loop service pipeline.

The whole chain — workload generation, simulated per-op service
cycles, salted arrival timestamps, salted key stream, dispatch, and
histogram percentiles — is a pure function of RunConfig.  Two runs of
the same config must produce bit-identical service payloads; changing
only the seed must change the arrivals (and in practice everything
downstream of them).
"""

import dataclasses

import pytest

from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment

CONFIG = RunConfig(
    program="unordered_map",
    frontend="stlt",
    num_cores=2,
    num_keys=200,
    warmup_ops=40,
    measure_ops=120,
    arrival_process="poisson",
    offered_load=0.7,
    dispatch_policy="jsq",
    seed=13,
)


@pytest.fixture(scope="module")
def service_pair():
    first = run_experiment(CONFIG).service
    second = run_experiment(CONFIG).service
    return first, second


class TestSameSeed:
    def test_service_payload_bit_identical(self, service_pair):
        first, second = service_pair
        assert first is not None
        assert first == second

    def test_percentiles_bit_identical(self, service_pair):
        first, second = service_pair
        for name in ("p50", "p95", "p99", "p999"):
            assert first["latency"][name] == second["latency"][name]

    def test_per_core_dispatch_bit_identical(self, service_pair):
        first, second = service_pair
        assert first["per_core"] == second["per_core"]


class TestDifferentSeed:
    def test_seed_changes_the_run(self):
        other = dataclasses.replace(CONFIG, seed=14)
        a = run_experiment(CONFIG).service
        b = run_experiment(other).service
        assert a != b

    def test_seed_changes_the_makespan(self):
        """Arrival timestamps are seed-salted, so even the wall-clock
        envelope of the run moves with the seed."""
        other = dataclasses.replace(CONFIG, seed=21)
        a = run_experiment(CONFIG).service
        b = run_experiment(other).service
        assert a["makespan"] != b["makespan"]


class TestClosedLoopUnaffected:
    def test_closed_config_has_no_service_payload(self):
        closed = dataclasses.replace(CONFIG, arrival_process="closed")
        result = run_experiment(closed)
        assert result.service is None
        assert result.service_result() is None
