"""Graceful degradation: timeout/retry, hedging, SLO fallback.

Hand-checkable synthetic timelines verify each mechanism's exact
semantics, then an end-to-end run with a deliberately slowed core shows
the point of the whole layer: mitigation caps the tail (p99/p99.9) that
an unmitigated run pays in full — deterministically, per seed.
"""

import pytest

from repro.errors import ConfigError
from repro.sim.config import RunConfig
from repro.svc.dispatch import make_dispatcher
from repro.svc.service import (
    Mitigation,
    ServiceResult,
    mitigation_from_config,
    simulate_service,
)


def run_service(service, arrivals, keys=None, cores=1,
                policy="round_robin", mitigation=None):
    if keys is None:
        keys = [0] * len(arrivals)
    return simulate_service(
        service, arrivals, keys, make_dispatcher(policy, cores),
        process="poisson", offered_load=0.7, arrival_rate=0.01,
        closed_loop_throughput=0.0143, mitigation=mitigation)


class TestMitigationValidation:
    def test_disabled_by_default(self):
        assert not Mitigation().enabled

    @pytest.mark.parametrize("kwargs", [
        dict(timeout_cycles=0.0),
        dict(timeout_cycles=-5.0),
        dict(retries=-1),
        dict(backoff=0.5),
        dict(hedge_cycles=0.0),
        dict(fallback=True),                 # needs slo_cycles
        dict(slo_cycles=-1.0),
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            Mitigation(**kwargs)

    def test_round_trip(self):
        m = Mitigation(timeout_cycles=600.0, retries=2, backoff=1.5,
                       hedge_cycles=400.0, fallback=True, slo_cycles=600.0)
        assert Mitigation.from_dict(m.to_dict()) == m

    def test_none_mitigation_uses_legacy_loop(self):
        a = run_service([[100]], [0.0, 0.0, 0.0])
        b = run_service([[100]], [0.0, 0.0, 0.0], mitigation=Mitigation())
        assert a.to_dict() == b.to_dict()
        assert a.mitigation is None


class TestTimeoutRetry:
    def test_timeout_redispatches_to_least_backlogged(self):
        # core 0 is a 1000-cycle/op crawler, core 1 a 100-cycle/op
        # server.  Round-robin: r0 -> core 0 (busy till 1000), r1 ->
        # core 1 (till 100), r2 -> core 0 behind r0: predicted wait
        # 1000 > timeout 300 -> the client waits its 300-cycle budget
        # out, then retries on core 1: 300 + 100 = 400 total.
        m = Mitigation(timeout_cycles=300.0, retries=1)
        result = run_service([[1000], [100]], [0.0, 0.0, 0.0], cores=2,
                             mitigation=m)
        assert result.timeouts == 1
        assert result.retries == 1
        # latencies: r0 = 1000, r1 = 100, r2 = 300 burned + 100 service
        # (percentiles are log-bucketed, hence the tolerance)
        assert result.latency["p50"] == pytest.approx(400.0, rel=0.02)
        assert result.mean_latency == pytest.approx(500.0)
        assert result.per_core[1]["requests"] == 2

    def test_abandoned_attempt_frees_server_time(self):
        # the timed-out attempt must consume no crawler cycles: core 0
        # serves exactly its one surviving request
        m = Mitigation(timeout_cycles=300.0, retries=1)
        result = run_service([[1000], [100]], [0.0, 0.0, 0.0], cores=2,
                             mitigation=m)
        assert result.per_core[0]["requests"] == 1
        assert result.per_core[0]["busy_fraction"] * result.makespan \
            == 1000.0

    def test_final_attempt_always_enqueues(self):
        # single core: nowhere better to go; the last attempt runs to
        # completion, so no request is ever lost
        m = Mitigation(timeout_cycles=10.0, retries=2)
        result = run_service([[1000]], [0.0, 0.0, 0.0], mitigation=m)
        assert result.requests == 3
        assert result.per_core[0]["requests"] == 3

    def test_backoff_grows_attempt_budgets(self):
        # budgets 100, 200 (backoff 2): a request seeing an 150-cycle
        # backlog times out once, then its 200-cycle budget holds
        m = Mitigation(timeout_cycles=100.0, retries=3, backoff=2.0)
        result = run_service([[150]], [0.0, 0.0], mitigation=m)
        assert result.timeouts == 1


class TestHedging:
    def test_queued_request_hedges_and_first_completion_wins(self):
        # r2 queues behind the crawler's r0 (start 1000 > hedge 200):
        # its hedge copy lands on core 1 at t=200 and completes at 300,
        # beating the primary's 2000
        m = Mitigation(hedge_cycles=200.0)
        result = run_service([[1000], [100]], [0.0, 0.0, 0.0], cores=2,
                             mitigation=m)
        assert result.hedges == 1
        assert result.hedge_wins == 1
        # latencies: r0 = 1000, r1 = 100, r2 = 300 (hedge win); the
        # percentile is log-bucketed, the mean is exact
        assert result.latency["p50"] == pytest.approx(300.0, rel=0.02)
        assert result.mean_latency == pytest.approx(1400.0 / 3)

    def test_hedge_copies_both_consume_server_time(self):
        m = Mitigation(hedge_cycles=200.0)
        result = run_service([[1000], [100]], [0.0, 0.0, 0.0], cores=2,
                             mitigation=m)
        # 3 arrivals, one duplicated: 4 services charged in total (the
        # losing primary still runs to completion — no cancellation)
        assert sum(c["requests"] for c in result.per_core) == 4
        assert result.per_core[0]["requests"] == 2

    def test_no_hedge_on_single_core(self):
        m = Mitigation(hedge_cycles=200.0)
        result = run_service([[1000]], [0.0, 0.0], mitigation=m)
        assert result.hedges == 0


class TestFallback:
    def test_predicted_slo_miss_reroutes_at_dispatch(self):
        m = Mitigation(fallback=True, slo_cycles=300.0)
        # round robin would alternate; after request 0 parks 1000
        # cycles on core 0, request 2 (round-robin back to core 0)
        # reroutes to core 1 up front, before losing any time
        result = run_service([[1000], [100]], [0.0, 0.0, 0.0], cores=2,
                             mitigation=m)
        assert result.fallbacks >= 1
        assert result.per_core[0]["requests"] == 1


class TestEndToEnd:
    """The paper-style demonstration: a slow core under open-loop load."""

    CONFIG = dict(program="unordered_map", frontend="stlt", num_keys=400,
                  measure_ops=400, warmup_ops=150, num_cores=2,
                  arrival_process="poisson", offered_load=0.7,
                  dispatch_policy="round_robin",
                  fault_plan=("slowdown:core=1,factor=6",), seed=42)

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.sim.engine import run_experiment

        plain = run_experiment(RunConfig(**self.CONFIG))
        mitigated = run_experiment(RunConfig(
            svc_timeout=4.0, svc_retries=2, svc_backoff=1.5,
            svc_hedge=3.0, svc_fallback=True, **self.CONFIG))
        return plain, mitigated

    def test_mitigation_caps_the_tail(self, pair):
        plain, mitigated = pair
        p_lat = plain.service["latency"]
        m_lat = mitigated.service["latency"]
        assert m_lat["p99"] < p_lat["p99"]
        assert m_lat["p999"] < p_lat["p999"]
        assert mitigated.service["timeouts"] + \
            mitigated.service["hedges"] + \
            mitigated.service["fallbacks"] > 0

    def test_mitigated_run_is_deterministic(self):
        from repro.sim.engine import run_experiment

        config = RunConfig(
            svc_timeout=4.0, svc_retries=2, svc_backoff=1.5,
            svc_hedge=3.0, svc_fallback=True, **self.CONFIG)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.to_dict() == b.to_dict()

    def test_mitigation_label_suffix(self):
        config = RunConfig(svc_timeout=4.0, **self.CONFIG)
        assert "+mit" in config.label

    def test_closed_loop_ignores_mitigation_knobs(self):
        # mitigation shapes the open-loop service model only; a closed
        # -loop run carries no service payload to mitigate
        config = RunConfig(program="unordered_map", frontend="stlt",
                           num_keys=200, measure_ops=60, warmup_ops=60,
                           svc_timeout=4.0)
        from repro.sim.engine import run_experiment

        result = run_experiment(config)
        assert result.service is None


class TestMitigationFromConfig:
    BASE = dict(program="unordered_map", num_keys=200, measure_ops=60,
                warmup_ops=60, num_cores=2, arrival_process="poisson",
                offered_load=0.5)

    def test_multiples_convert_to_cycles(self):
        config = RunConfig(svc_timeout=6.0, svc_retries=2,
                           svc_hedge=4.0, svc_fallback=True, **self.BASE)
        m = mitigation_from_config(config, mean_service=100.0)
        assert m == Mitigation(timeout_cycles=600.0, retries=2,
                               backoff=2.0, hedge_cycles=400.0,
                               fallback=True, slo_cycles=600.0)

    def test_fallback_slo_defaults_to_four_means(self):
        config = RunConfig(svc_fallback=True, **self.BASE)
        m = mitigation_from_config(config, mean_service=100.0)
        assert m.slo_cycles == 400.0

    def test_quiet_config_builds_nothing(self):
        config = RunConfig(**self.BASE)
        assert mitigation_from_config(config, mean_service=100.0) is None
