"""Dispatch policies: balance, affinity, shortest-queue greed."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import DISPATCH_POLICIES as CONFIG_POLICIES
from repro.svc.dispatch import (
    DISPATCH_POLICIES,
    JoinShortestQueueDispatcher,
    KeyHashDispatcher,
    RoundRobinDispatcher,
    make_dispatcher,
)


class TestFactory:
    def test_config_and_factory_policy_lists_agree(self):
        """RunConfig validates against the same names the factory
        builds — the two lists must never drift apart."""
        assert tuple(CONFIG_POLICIES) == tuple(DISPATCH_POLICIES)

    @pytest.mark.parametrize("policy", DISPATCH_POLICIES)
    def test_every_policy_constructs(self, policy):
        dispatcher = make_dispatcher(policy, 4)
        assert dispatcher.name == policy
        assert dispatcher.num_cores == 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_dispatcher("random", 4)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            RoundRobinDispatcher(0)


class TestRoundRobin:
    def test_rotates_evenly(self):
        d = RoundRobinDispatcher(3)
        picks = [d.pick(i, key_id=99, depths=[0, 0, 0])
                 for i in range(9)]
        assert picks == [0, 1, 2, 0, 1, 2, 0, 1, 2]


class TestKeyHash:
    def test_same_key_always_same_core(self):
        d = KeyHashDispatcher(4)
        cores = {d.pick(i, key_id=123, depths=[0] * 4)
                 for i in range(50)}
        assert len(cores) == 1

    def test_injected_hash_controls_the_shard(self):
        d = KeyHashDispatcher(4, key_hash=lambda k: k * 7 + 1)
        assert d.pick(0, key_id=1, depths=[0] * 4) == (1 * 7 + 1) % 4

    def test_spreads_distinct_keys(self):
        d = KeyHashDispatcher(4)
        cores = {d.pick(i, key_id=key, depths=[0] * 4)
                 for i, key in enumerate(range(100))}
        assert cores == {0, 1, 2, 3}


class TestJoinShortestQueue:
    def test_picks_minimum_depth(self):
        d = JoinShortestQueueDispatcher(4)
        assert d.pick(0, key_id=0, depths=[3, 1, 2, 5]) == 1

    def test_ties_break_to_lowest_core(self):
        d = JoinShortestQueueDispatcher(4)
        assert d.pick(0, key_id=0, depths=[2, 1, 1, 1]) == 1

    def test_depth_vector_shape_enforced(self):
        d = JoinShortestQueueDispatcher(4)
        with pytest.raises(ConfigError):
            d.pick(0, key_id=0, depths=[0, 0])
