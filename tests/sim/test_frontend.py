"""Front-end behaviour tests (the Fig. 4 pseudocode and ablations)."""

import pytest

from repro.core.os_interface import OSInterface
from repro.core.stlt import STLT
from repro.core.stu import STU
from repro.hashes.registry import get_hash
from repro.kvs import make_index
from repro.sim.frontend import (
    BaselineFrontend,
    SLBFrontend,
    STLTFrontend,
    SoftwareSTLTFrontend,
    make_frontend,
)
from repro.slb.slb import SLBCache
from repro.workloads.keys import key_bytes


def build_index(ctx, n=64):
    index = make_index("unordered_map", ctx, expected_keys=256)
    records = []
    for i in range(n):
        key = key_bytes(i)
        rec = ctx.records.create(key, 32)
        index.build_insert(key, rec)
        records.append(rec)
    return index, records


@pytest.fixture
def stlt_frontend(ctx):
    index, records = build_index(ctx)
    stu = STU(ctx.mem)
    osi = OSInterface(ctx.space, ctx.mem, stu)
    osi.stlt_alloc(1 << 10)
    fe = STLTFrontend(ctx, index, stu, get_hash("xxh3"))
    return fe, records, stu


class TestBaseline:
    def test_get_delegates_to_index(self, ctx):
        index, records = build_index(ctx)
        fe = BaselineFrontend(ctx, index)
        assert fe.get(key_bytes(3)) is records[3]
        assert fe.get(key_bytes(999)) is None

    def test_no_fast_hits_counted(self, ctx):
        index, _ = build_index(ctx)
        fe = BaselineFrontend(ctx, index)
        fe.get(key_bytes(1))
        assert fe.fast_hits == 0


class TestSTLTFrontend:
    def test_first_get_misses_second_hits(self, stlt_frontend):
        fe, records, stu = stlt_frontend
        assert fe.get(key_bytes(5)) is records[5]
        assert fe.fast_hits == 0
        assert fe.get(key_bytes(5)) is records[5]
        assert fe.fast_hits == 1

    def test_miss_inserts_for_future(self, stlt_frontend):
        fe, _, stu = stlt_frontend
        fe.get(key_bytes(7))
        assert stu.insert_count == 1

    def test_absent_key_returns_none_and_no_insert(self, stlt_frontend):
        fe, _, stu = stlt_frontend
        assert fe.get(key_bytes(999)) is None
        assert stu.insert_count == 0

    def test_stale_va_falls_back_to_slow_path(self, ctx, stlt_frontend):
        fe, records, stu = stlt_frontend
        fe.get(key_bytes(9))  # cached now
        # move the record: its VA changes, the STLT row goes stale
        old_va = ctx.records.move(records[9])
        fe.index.remove(key_bytes(9))
        fe.index.build_insert(key_bytes(9), records[9])
        result = fe.get(key_bytes(9))
        assert result is records[9]
        assert result.va != old_va

    def test_record_moved_hook_refreshes_row(self, ctx, stlt_frontend):
        fe, records, stu = stlt_frontend
        fe.get(key_bytes(4))
        old_va = ctx.records.move(records[4])
        fe.on_record_moved(records[4], old_va)
        hits_before = fe.fast_hits
        assert fe.get(key_bytes(4)) is records[4]
        assert fe.fast_hits == hits_before + 1

    def test_fast_miss_rate(self, stlt_frontend):
        fe, _, _ = stlt_frontend
        fe.get(key_bytes(1))
        fe.get(key_bytes(1))
        assert fe.fast_miss_rate == pytest.approx(0.5)

    def test_integer_transform_applied(self, ctx):
        index, records = build_index(ctx)
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 10)
        seen = []

        def transform(integer):
            seen.append(integer)
            return integer ^ 1

        fe = STLTFrontend(ctx, index, stu, get_hash("xxh3"),
                          integer_transform=transform)
        fe.get(key_bytes(2))
        assert seen


class TestSLBFrontend:
    def test_hit_after_admission(self, ctx):
        index, records = build_index(ctx)
        slb = SLBCache(ctx.space, ctx.mem, num_entries=7 * 32,
                       fast_hash=get_hash("xxh3"))
        fe = SLBFrontend(ctx, index, slb)
        fe.get(key_bytes(11))
        assert fe.get(key_bytes(11)) is records[11]
        assert fe.fast_hits >= 1

    def test_on_insert_populates(self, ctx):
        index, _ = build_index(ctx)
        slb = SLBCache(ctx.space, ctx.mem, num_entries=7 * 32,
                       fast_hash=get_hash("xxh3"))
        fe = SLBFrontend(ctx, index, slb)
        key = key_bytes(200)
        rec = ctx.records.create(key, 32)
        index.build_insert(key, rec)
        fe.on_insert(key, rec)
        assert fe.get(key) is rec
        assert fe.fast_hits == 1


class TestSoftwareSTLT:
    def test_hit_path(self, ctx):
        index, records = build_index(ctx)
        rows = 1 << 10
        table = STLT(rows)
        table_va = ctx.space.alloc_region(rows * 16)
        fe = SoftwareSTLTFrontend(ctx, index, table, table_va,
                                  get_hash("xxh3"))
        fe.get(key_bytes(3))
        assert fe.get(key_bytes(3)) is records[3]
        assert fe.fast_hits == 1

    def test_table_traffic_is_virtual(self, ctx):
        index, _ = build_index(ctx)
        rows = 1 << 10
        table = STLT(rows)
        table_va = ctx.space.alloc_region(rows * 16)
        fe = SoftwareSTLTFrontend(ctx, index, table, table_va,
                                  get_hash("xxh3"))
        tlb_events_before = ctx.mem.stats.dtlb_hits + ctx.mem.stats.dtlb_misses
        fe.get(key_bytes(3))
        assert ctx.mem.stats.dtlb_hits + ctx.mem.stats.dtlb_misses \
            > tlb_events_before


class TestFactory:
    def test_unknown_kind(self, ctx):
        index, _ = build_index(ctx)
        with pytest.raises(Exception):
            make_frontend("nope", ctx, index)
