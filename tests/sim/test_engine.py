"""Engine integration tests on small configurations."""

import pytest

from repro.sim.config import RunConfig
from repro.sim.engine import Engine, run_experiment

SMALL = dict(num_keys=3000, measure_ops=800, warmup_ops=1600)


class TestEngineRuns:
    @pytest.mark.parametrize("frontend",
                             ["baseline", "slb", "stlt", "stlt_va",
                              "stlt_sw"])
    def test_every_frontend_runs(self, frontend):
        result = run_experiment(RunConfig(frontend=frontend, **SMALL))
        assert result.ops == 800
        assert result.cycles > 0

    @pytest.mark.parametrize("program",
                             ["redis", "unordered_map", "dense_hash_map",
                              "ordered_map", "btree"])
    def test_every_program_runs(self, program):
        result = run_experiment(RunConfig(
            program=program, frontend="stlt", num_keys=1500,
            measure_ops=400, warmup_ops=800))
        assert result.cycles_per_op > 0

    def test_latest_distribution_grows_keyspace(self):
        engine = Engine(RunConfig(distribution="latest", **SMALL))
        result = engine.run()
        assert result.sets > 0
        assert len(engine.records) > engine.config.num_keys

    def test_measured_window_excludes_warmup(self):
        result = run_experiment(RunConfig(**SMALL))
        assert result.ops == 800
        # per-op cost should be bounded by the theoretical worst case of
        # a handful of uncached accesses
        assert result.cycles_per_op < 20_000

    def test_deterministic_given_seed(self):
        a = run_experiment(RunConfig(frontend="stlt", seed=3, **SMALL))
        b = run_experiment(RunConfig(frontend="stlt", seed=3, **SMALL))
        assert a.cycles == b.cycles
        assert a.mem.stlb_misses == b.mem.stlb_misses

    def test_different_seeds_differ(self):
        a = run_experiment(RunConfig(seed=1, **SMALL))
        b = run_experiment(RunConfig(seed=2, **SMALL))
        assert a.cycles != b.cycles


class TestPrefill:
    def test_prefill_gives_high_initial_hit_rate(self):
        result = run_experiment(RunConfig(frontend="stlt", **SMALL))
        assert result.fast_miss_rate < 0.10

    def test_no_prefill_starts_cold(self):
        warm = run_experiment(RunConfig(frontend="stlt", **SMALL))
        cold = run_experiment(RunConfig(frontend="stlt", prefill=False,
                                        num_keys=3000, measure_ops=800,
                                        warmup_ops=0))
        assert cold.fast_miss_rate > warm.fast_miss_rate

    def test_prefill_applies_to_slb(self):
        result = run_experiment(RunConfig(frontend="slb", **SMALL))
        assert result.fast_miss_rate < 0.10


class TestResultContents:
    def test_fast_table_bytes_reported(self):
        stlt = run_experiment(RunConfig(frontend="stlt", stlt_rows=4096,
                                        **SMALL))
        assert stlt.fast_table_bytes == 4096 * 16
        slb = run_experiment(RunConfig(frontend="slb", stlt_rows=4096,
                                       **SMALL))
        assert slb.fast_table_bytes == 4096 * 40  # the 2.5x of Fig. 14

    def test_baseline_has_no_fast_metrics(self):
        base = run_experiment(RunConfig(frontend="baseline", **SMALL))
        assert base.fast_miss_rate is None

    def test_attribution_covers_all_cycles(self):
        result = run_experiment(RunConfig(frontend="stlt", **SMALL))
        assert sum(result.attr.values()) == pytest.approx(result.cycles)


class TestFunctionalIntegrity:
    def test_stlt_and_baseline_agree_on_results(self):
        # both engines must serve every GET (the engine raises otherwise);
        # run both to make sure neither loses a key
        run_experiment(RunConfig(frontend="baseline", **SMALL))
        run_experiment(RunConfig(frontend="stlt", **SMALL))

    def test_stb_hits_occur_with_full_stlt(self):
        result = run_experiment(RunConfig(frontend="stlt", **SMALL))
        assert result.mem.stb_hits > 0

    def test_va_only_never_touches_stb(self):
        result = run_experiment(RunConfig(frontend="stlt_va", **SMALL))
        assert result.mem.stb_hits == 0
        assert result.mem.stb_misses == 0
