"""Result metric tests."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.mem.stats import MemoryStats
from repro.sim.results import (
    RunResult,
    format_table,
    geomean,
    reduction,
    speedup,
)


def result(cycles, ops=100, **kwargs):
    return RunResult(label="t", frontend="baseline", cycles=cycles, ops=ops,
                     gets=ops, sets=0, mem=MemoryStats(), **kwargs)


class TestMetrics:
    def test_cycles_per_op(self):
        assert result(1000, ops=10).cycles_per_op == 100

    def test_speedup(self):
        base = result(2000)
        fast = result(1000)
        assert speedup(base, fast) == pytest.approx(2.0)

    def test_speedup_below_one_means_slower(self):
        base = result(1000)
        slow = result(4000)
        assert speedup(base, slow) == pytest.approx(0.25)

    def test_reduction(self):
        assert reduction(100, 70) == pytest.approx(0.3)
        assert reduction(100, 130) == pytest.approx(-0.3)
        assert reduction(0, 10) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_attr_share(self):
        r = result(1000, attr={"hash": 100, "index": 400})
        assert r.attr_share("hash") == pytest.approx(0.1)
        assert r.attr_share("hash", "index") == pytest.approx(0.5)


_counts = st.integers(min_value=0, max_value=10**12)

_mem_stats = st.builds(
    MemoryStats,
    **{f.name: _counts for f in dataclasses.fields(MemoryStats)},
)

_run_results = st.builds(
    RunResult,
    label=st.text(max_size=30),
    frontend=st.sampled_from(
        ["baseline", "slb", "stlt", "stlt_va", "stlt_sw"]),
    cycles=_counts,
    ops=_counts,
    gets=_counts,
    sets=_counts,
    mem=_mem_stats,
    attr=st.dictionaries(
        st.sampled_from(["hash", "index", "translation", "value", "other"]),
        _counts, max_size=5),
    fast_miss_rate=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1.0)),
    fast_occupancy=st.one_of(st.none(), _counts),
    fast_table_bytes=st.one_of(st.none(), _counts),
)


class TestSerialisation:
    @settings(max_examples=60, deadline=None)
    @given(_run_results)
    def test_round_trip_is_exact(self, run_result):
        """to_dict -> from_dict reproduces every field exactly."""
        data = run_result.to_dict()
        rebuilt = RunResult.from_dict(data)
        assert rebuilt == run_result
        # and the dict itself round-trips (store writes it as JSON)
        assert rebuilt.to_dict() == data

    @settings(max_examples=20, deadline=None)
    @given(_run_results)
    def test_round_trip_survives_json(self, run_result):
        import json
        data = json.loads(json.dumps(run_result.to_dict()))
        assert RunResult.from_dict(data) == run_result

    def test_dict_is_plain_data(self):
        data = result(1000).to_dict()
        assert isinstance(data["mem"], dict)
        assert data["mem"]["accesses"] == 0

    def test_unknown_field_rejected(self):
        data = result(1000).to_dict()
        data["surprise"] = 1
        with pytest.raises(ReproError):
            RunResult.from_dict(data)


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0].rstrip()) or True
                   for line in lines)
        assert "long" in lines[3]
