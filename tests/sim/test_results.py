"""Result metric tests."""

import pytest

from repro.mem.stats import MemoryStats
from repro.sim.results import (
    RunResult,
    format_table,
    geomean,
    reduction,
    speedup,
)


def result(cycles, ops=100, **kwargs):
    return RunResult(label="t", frontend="baseline", cycles=cycles, ops=ops,
                     gets=ops, sets=0, mem=MemoryStats(), **kwargs)


class TestMetrics:
    def test_cycles_per_op(self):
        assert result(1000, ops=10).cycles_per_op == 100

    def test_speedup(self):
        base = result(2000)
        fast = result(1000)
        assert speedup(base, fast) == pytest.approx(2.0)

    def test_speedup_below_one_means_slower(self):
        base = result(1000)
        slow = result(4000)
        assert speedup(base, slow) == pytest.approx(0.25)

    def test_reduction(self):
        assert reduction(100, 70) == pytest.approx(0.3)
        assert reduction(100, 130) == pytest.approx(-0.3)
        assert reduction(0, 10) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_attr_share(self):
        r = result(1000, attr={"hash": 100, "index": 400})
        assert r.attr_share("hash") == pytest.approx(0.1)
        assert r.attr_share("hash", "index") == pytest.approx(0.5)


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0].rstrip()) or True
                   for line in lines)
        assert "long" in lines[3]
