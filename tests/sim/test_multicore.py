"""The multi-core engine: single-core bit-identity and N-core semantics.

The refactor's contract (ISSUE, PR 2): a ``num_cores=1`` run through
:class:`~repro.sim.multicore.MultiCoreEngine` is *bit-identical* — same
cycles, same every-counter memory statistics, same cycle attribution —
to the pre-split single-core engine.  ``tests/data/golden_smoke.json``
was captured from the pre-refactor engine on the ``smoke`` sweep; the
golden test here compares field by field (the refactor added two new
DRAM counters that the golden predates, so the memory bundle compares
over the golden's keys).
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.row import make_pte
from repro.errors import KVSError
from repro.sim.config import RunConfig
from repro.sim.engine import Engine, run_experiment
from repro.sim.multicore import MultiCoreEngine, _CoreRunState
from repro.sim.results import RunResult

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / \
    "golden_smoke.json"
SMOKE = dict(num_keys=200, measure_ops=60, warmup_ops=120)
SMOKE_POINTS = [
    (program, frontend)
    for program in ("unordered_map", "btree")
    for frontend in ("baseline", "slb", "stlt")
]


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestSingleCoreBitIdentity:
    """num_cores=1 through the interleaver == the pre-split engine."""

    @pytest.mark.parametrize("program,frontend", SMOKE_POINTS)
    def test_matches_golden(self, golden, program, frontend):
        config = RunConfig(program=program, frontend=frontend, **SMOKE)
        result = run_experiment(config)
        want = golden[f"{program}/{frontend}"]
        assert result.cycles == want["cycles"]
        assert result.ops == want["ops"]
        assert result.gets == want["gets"]
        assert result.sets == want["sets"]
        assert result.attr == want["attr"]
        assert result.fast_miss_rate == want["fast_miss_rate"]
        assert result.fast_occupancy == want["fast_occupancy"]
        assert result.fast_table_bytes == want["fast_table_bytes"]
        mem = asdict(result.mem)
        for counter, value in want["mem"].items():
            assert mem[counter] == value, (
                f"{program}/{frontend}: {counter} drifted")

    def test_single_core_result_shape(self):
        result = run_experiment(
            RunConfig(frontend="stlt", **SMOKE))
        assert result.core_id is None
        assert result.cores is None
        assert result.fairness is None
        assert result.num_cores == 1
        assert result.label == "unordered_map/stlt/zipf-64B"


class TestMultiCore:
    def _run(self, num_cores, **overrides):
        kwargs = dict(SMOKE)
        kwargs.update(overrides)
        return run_experiment(
            RunConfig(frontend="stlt", num_cores=num_cores, **kwargs))

    def test_aggregate_sums_ops_and_takes_wall_clock(self):
        agg = self._run(3)
        per_core = agg.per_core_results()
        assert len(per_core) == 3
        assert agg.ops == sum(c.ops for c in per_core)
        assert agg.gets == sum(c.gets for c in per_core)
        assert agg.cycles == max(c.cycles for c in per_core)
        assert agg.mem.accesses == sum(c.mem.accesses for c in per_core)
        assert agg.num_cores == 3

    def test_per_core_labels_and_ids(self):
        agg = self._run(2)
        assert agg.label.endswith("x2c")
        for i, core in enumerate(agg.per_core_results()):
            assert core.core_id == i
            assert f"[core{i}]" in core.label

    def test_fairness_in_unit_interval(self):
        agg = self._run(4)
        assert agg.fairness is not None
        assert 0.0 < agg.fairness <= 1.0 + 1e-12

    def test_every_core_hits_the_shared_stlt(self):
        agg = self._run(2)
        for core in agg.per_core_results():
            assert core.fast_miss_rate is not None
            # the table is prefilled and shared: each core's stream
            # must find its keys there
            assert core.fast_miss_rate < 0.5

    def test_throughput_scales_with_cores(self):
        single = self._run(1)
        quad = self._run(4)
        assert quad.throughput > single.throughput
        # scaling may even run super-linear at small scale: sibling
        # cores warm the *shared* L3 with the zipf-hot lines
        # (constructive sharing), which a single core cannot exploit —
        # but it is bounded well below ideal-plus-sharing blowup
        assert quad.throughput < 8.0 * single.throughput
        # the constructive-sharing signature: the 4-core run hits in
        # the shared L3, the single-core run had no one to warm it
        assert quad.mem.l3_hits > single.mem.l3_hits

    def test_dram_contention_appears_only_with_cores(self):
        single = self._run(1)
        quad = self._run(4)
        assert single.mem.dram_queue_cycles == 0
        assert quad.mem.dram_queue_cycles > 0
        assert quad.mem.dram_max_queue_cycles > 0

    def test_latest_distribution_fresh_keys_do_not_collide(self):
        # each core inserts into its own strided namespace; every GET
        # of every core must verify against the functional store, so a
        # collision would raise inside the run
        agg = self._run(3, distribution="latest")
        assert agg.sets > 0
        assert agg.ops == agg.gets + agg.sets

    def test_aggregate_round_trips_through_json(self):
        agg = self._run(2)
        clone = RunResult.from_dict(
            json.loads(json.dumps(agg.to_dict())))
        assert clone.to_dict() == agg.to_dict()
        assert clone.fairness == agg.fairness
        assert [c.core_id for c in clone.per_core_results()] == [0, 1]

    def test_multicore_engine_exposes_both_views(self):
        engine = Engine(RunConfig(frontend="stlt", num_cores=2, **SMOKE))
        outcome = MultiCoreEngine(engine).run()
        assert len(outcome.per_core) == 2
        assert outcome.aggregate.ops == sum(
            r.ops for r in outcome.per_core)

    def test_unmarked_core_fails_loudly(self):
        # a core whose measure window never opened must not fabricate a
        # result (the old engine's "no measured operations" guard)
        engine = Engine(RunConfig(frontend="stlt", num_cores=2, **SMOKE))
        state = _CoreRunState(engine, 0)
        with pytest.raises(KVSError):
            state.finish(2)


class TestOpCycleCapture:
    """The per-op cycle hook (PR 3) is pure observation: capture on or
    off, the simulated machine runs the exact same cycles — and the
    captured per-op cycles must tile the measured window exactly."""

    @pytest.mark.parametrize("program,frontend", SMOKE_POINTS)
    def test_capture_stays_bit_identical_to_golden(self, golden,
                                                   program, frontend):
        config = RunConfig(program=program, frontend=frontend, **SMOKE)
        outcome = MultiCoreEngine(Engine(config),
                                  capture_op_cycles=True).run()
        result = outcome.per_core[0]
        want = golden[f"{program}/{frontend}"]
        assert result.cycles == want["cycles"]
        assert result.ops == want["ops"]
        assert result.attr == want["attr"]
        mem = asdict(result.mem)
        for counter, value in want["mem"].items():
            assert mem[counter] == value, (
                f"{program}/{frontend}: capture perturbed {counter}")

    def test_capture_off_leaves_op_cycles_unset(self):
        engine = Engine(RunConfig(frontend="stlt", num_cores=2, **SMOKE))
        outcome = MultiCoreEngine(engine).run()
        assert outcome.op_cycles is None

    @pytest.mark.parametrize("num_cores", [1, 3])
    def test_op_cycles_tile_the_measured_window(self, num_cores):
        engine = Engine(RunConfig(frontend="stlt",
                                  num_cores=num_cores, **SMOKE))
        outcome = MultiCoreEngine(engine, capture_op_cycles=True).run()
        assert outcome.op_cycles is not None
        assert len(outcome.op_cycles) == num_cores
        for core, per_op in enumerate(outcome.op_cycles):
            result = outcome.per_core[core]
            assert len(per_op) == result.ops
            assert all(c >= 0 for c in per_op)
            # the per-op deltas partition the measured window exactly
            assert sum(per_op) == result.mem.total_cycles

    def test_multicore_capture_matches_uncaptured_run(self):
        config = RunConfig(frontend="stlt", num_cores=2, **SMOKE)
        plain = MultiCoreEngine(Engine(config)).run()
        captured = MultiCoreEngine(Engine(config),
                                   capture_op_cycles=True).run()
        assert captured.aggregate.to_dict() == plain.aggregate.to_dict()


class TestSharedTablesAcrossCores:
    def test_stus_share_one_stlt_and_ipb(self):
        engine = Engine(RunConfig(frontend="stlt", num_cores=3, **SMOKE))
        stlts = {id(stu.stlt) for stu in engine.stus}
        ipbs = {id(stu.ipb) for stu in engine.stus}
        assert len(stlts) == 1
        assert len(ipbs) == 1
        assert engine.osi is not None
        assert len(engine.osi.stus) == 3

    def test_page_invalidation_scrubs_every_cores_stb(self):
        engine = Engine(RunConfig(frontend="stlt", num_cores=2, **SMOKE))
        va = engine.ctx.space.alloc_region(4096)
        vpn = va >> 12
        # warm every core's STB with a translation for the page
        for stu in engine.stus:
            stu.stb.insert(vpn, make_pte(0x42))
            assert stu.stb.probe(vpn) == 0x42
        engine.ctx.space.unmap_page(va)
        for stu in engine.stus:
            assert stu.stb.probe(vpn) is None

    def test_slb_is_shared_and_rebinds_timing(self):
        engine = Engine(RunConfig(frontend="slb", num_cores=2, **SMOKE))
        assert engine.slb is not None
        fronts = engine.frontends
        assert fronts[0].slb is fronts[1].slb
        engine.bind_core(1)
        assert engine.slb.mem is engine.ctx.core_mem(1)
