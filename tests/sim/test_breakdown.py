"""Cycle-attribution breakdown tests (Fig. 1 machinery)."""

import pytest

from repro.sim.breakdown import ADDRESSING_CATEGORIES, run_breakdown
from repro.sim.config import RunConfig

SMALL = dict(num_keys=4000, measure_ops=800, warmup_ops=1600)


class TestBreakdown:
    @pytest.fixture(scope="class")
    def redis_breakdown(self):
        return run_breakdown(RunConfig(program="redis",
                                       frontend="baseline", **SMALL))

    def test_shares_sum_to_one(self, redis_breakdown):
        assert sum(redis_breakdown.shares.values()) == \
            pytest.approx(1.0, abs=1e-9)

    def test_all_shares_positive(self, redis_breakdown):
        assert all(v > 0 for v in redis_breakdown.shares.values())

    def test_expected_categories_present(self, redis_breakdown):
        for category in ("command", "hash", "index", "record", "value",
                         "translation"):
            assert category in redis_breakdown.shares, category

    def test_rows_sorted_descending(self, redis_breakdown):
        shares = [s for _, s in redis_breakdown.rows()]
        assert shares == sorted(shares, reverse=True)

    def test_addressing_grouping_is_stable(self):
        assert "value" not in ADDRESSING_CATEGORIES
        assert "command" not in ADDRESSING_CATEGORIES
        assert "hash" in ADDRESSING_CATEGORIES
        assert "translation" in ADDRESSING_CATEGORIES

    def test_stlt_shifts_cycles_out_of_addressing(self):
        base = run_breakdown(RunConfig(program="redis",
                                       frontend="baseline", **SMALL))
        fast = run_breakdown(RunConfig(program="redis", frontend="stlt",
                                       **SMALL))
        # the absolute addressing cycles must shrink under STLT
        base_addr = base.result.cycles * base.addressing_share
        fast_addr = fast.result.cycles * fast.addressing_share
        assert fast_addr < base_addr

    def test_kernel_benchmarks_have_no_command_share(self):
        breakdown = run_breakdown(RunConfig(program="unordered_map",
                                            frontend="baseline", **SMALL))
        assert "command" not in breakdown.shares
