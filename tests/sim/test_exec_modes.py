"""The execution-mode seam: batched/untimed vs. the reference loop.

The contract (DESIGN.md section 11):

* **batched** is *bit-identical* to reference — every cycle, every
  counter, every RNG draw, every DRAM queue timestamp.  Pinned here
  against ``tests/data/golden_smoke.json`` (captured long before the
  seam existed) and differentially against reference mode over a
  hypothesis-driven matrix of front-ends, programs, cores, churn,
  distributions and cluster sizes.
* **untimed** pins every *event count* (hits, misses, walks, DRAM line
  fetches, prefetch decisions, oracle verdicts) equal to reference
  while every cycle-denominated statistic stays zero.
* all modes observe the identical prefill state
  (:meth:`Engine.prefill_digest`), and a mid-run
  ``notify_record_moved`` invalidation behaves identically in both
  timed modes — the two seams through which the modes could silently
  drift apart.
"""

import dataclasses
import json
from dataclasses import asdict
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.config import RunConfig
from repro.sim.engine import Engine, run_experiment
from repro.sim.fastpath import BatchedOpExecutor
from repro.sim.multicore import MultiCoreEngine
from repro.workloads.keys import key_bytes

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / \
    "golden_smoke.json"
SMOKE = dict(num_keys=200, measure_ops=60, warmup_ops=120)
SMOKE_POINTS = [
    (program, frontend)
    for program in ("unordered_map", "btree")
    for frontend in ("baseline", "slb", "stlt")
]

#: MemoryStats fields that count *events*: untimed must match reference
#: exactly on these
COUNT_FIELDS = (
    "accesses", "reads", "writes",
    "dtlb_hits", "dtlb_misses", "stlb_hits", "stlb_misses",
    "stb_hits", "stb_misses", "page_walks",
    "l1_hits", "l1_misses", "l2_hits", "l2_misses",
    "l3_hits", "l3_misses", "dram_accesses",
    "prefetches_issued", "prefetches_useful",
    "tlb_prefetches_issued", "tlb_prefetches_useful",
)
#: fields that denominate in cycles: untimed must report zero
CYCLE_FIELDS = (
    "total_cycles", "walk_cycles",
    "dram_queue_cycles", "dram_busy_cycles", "dram_max_queue_cycles",
)


def run_mode(config: RunConfig, exec_mode: str, capture: bool = False):
    """One full run in the given mode; returns (outcome, engine)."""
    cfg = dataclasses.replace(config, exec_mode=exec_mode)
    engine = Engine(cfg)
    outcome = MultiCoreEngine(engine, capture_op_cycles=capture).run()
    return outcome, engine


def full_state(outcome, engine) -> dict:
    """Everything observable from a run, for exact comparison."""
    return {
        "aggregate": outcome.aggregate.to_dict(),
        "per_core": [r.to_dict() for r in outcome.per_core],
        "op_cycles": outcome.op_cycles,
        "dram": engine.ctx.core_mem(0).dram.snapshot(),
        "table": engine.prefill_digest(),
    }


class TestBatchedGoldenBitIdentity:
    """Batched mode against the pre-seam golden numbers."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("program,frontend", SMOKE_POINTS)
    def test_matches_golden(self, golden, program, frontend):
        config = RunConfig(program=program, frontend=frontend,
                           exec_mode="batched", **SMOKE)
        result = run_experiment(config)
        want = golden[f"{program}/{frontend}"]
        assert result.cycles == want["cycles"]
        assert result.ops == want["ops"]
        assert result.gets == want["gets"]
        assert result.sets == want["sets"]
        assert result.attr == want["attr"]
        assert result.fast_miss_rate == want["fast_miss_rate"]
        mem = asdict(result.mem)
        for counter, value in want["mem"].items():
            assert mem[counter] == value, (
                f"{program}/{frontend}: batched drifted on {counter}")


class TestBatchedDifferential:
    """Batched == reference over a randomised config matrix."""

    @settings(max_examples=12, deadline=None)
    @given(
        program=st.sampled_from(("unordered_map", "btree")),
        frontend=st.sampled_from(
            ("baseline", "slb", "stlt", "stlt_va", "stlt_sw")),
        accel=st.sampled_from(
            ("none", "stlt", "victima", "pcax", "revelator")),
        num_cores=st.sampled_from((1, 2)),
        churn_rate=st.sampled_from((0.0, 0.03)),
        distribution=st.sampled_from(("zipf", "latest")),
        value_size=st.sampled_from((64, 128)),
    )
    def test_run_state_is_identical(self, program, frontend, accel,
                                    num_cores, churn_rate, distribution,
                                    value_size):
        # a non-'none' accel owns the whole translation path, so it
        # composes only with the baseline frontend (ConfigError else)
        if accel != "none":
            frontend = "baseline"
        config = RunConfig(
            program=program, frontend=frontend, accel=accel,
            num_cores=num_cores,
            churn_rate=churn_rate, distribution=distribution,
            value_size=value_size, num_keys=150, measure_ops=40,
            warmup_ops=80)
        ref = full_state(*run_mode(config, "reference"))
        bat = full_state(*run_mode(config, "batched"))
        assert bat == ref

    def test_capture_and_faults_are_identical(self):
        config = RunConfig(
            frontend="stlt", fault_plan=("slowdown:core=0,factor=2",),
            **SMOKE)
        ref = full_state(*run_mode(config, "reference", capture=True))
        bat = full_state(*run_mode(config, "batched", capture=True))
        assert bat == ref

    def test_redis_program_is_identical(self):
        config = RunConfig(program="redis", frontend="stlt", **SMOKE)
        ref = full_state(*run_mode(config, "reference"))
        bat = full_state(*run_mode(config, "batched"))
        assert bat == ref

    def test_cluster_runs_are_identical(self):
        config = RunConfig(frontend="stlt", nodes=3, **SMOKE)
        ref = run_experiment(
            dataclasses.replace(config, exec_mode="reference"))
        bat = run_experiment(
            dataclasses.replace(config, exec_mode="batched"))
        assert bat.to_dict() == ref.to_dict()


class TestUntimedCounts:
    """Untimed mode: event counts pinned, cycles zero."""

    @settings(max_examples=8, deadline=None)
    @given(
        frontend=st.sampled_from(("baseline", "slb", "stlt", "stlt_sw")),
        accel=st.sampled_from(
            ("none", "victima", "pcax", "revelator")),
        churn_rate=st.sampled_from((0.0, 0.03)),
        prefetchers=st.sampled_from(((), ("stream", "vldp")))
    )
    def test_event_counts_match_reference(self, frontend, accel,
                                          churn_rate, prefetchers):
        if accel != "none":
            frontend = "baseline"
        config = RunConfig(frontend=frontend, accel=accel,
                           churn_rate=churn_rate,
                           prefetchers=prefetchers, num_keys=150,
                           measure_ops=40, warmup_ops=80)
        ref, _ = run_mode(config, "reference")
        unt, _ = run_mode(config, "untimed")
        for r, u in zip(ref.per_core, unt.per_core):
            rm, um = asdict(r.mem), asdict(u.mem)
            for field in COUNT_FIELDS:
                assert um[field] == rm[field], f"{field} drifted"
            for field in CYCLE_FIELDS:
                assert um[field] == 0, f"{field} charged cycles"
            assert u.ops == r.ops
            assert u.gets == r.gets
            assert u.sets == r.sets
            assert u.fast_miss_rate == r.fast_miss_rate
            assert u.cycles == 0

    def test_untimed_cluster_pins_counts(self):
        config = RunConfig(frontend="stlt", nodes=2, **SMOKE)
        ref = run_experiment(
            dataclasses.replace(config, exec_mode="reference"))
        unt = run_experiment(
            dataclasses.replace(config, exec_mode="untimed"))
        rm, um = asdict(ref.mem), asdict(unt.mem)
        for field in COUNT_FIELDS:
            assert um[field] == rm[field], f"cluster {field} drifted"
        assert unt.gets == ref.gets
        assert unt.sets == ref.sets
        assert unt.cycles == 0

    def test_untimed_rejects_the_queueing_layer(self):
        with pytest.raises(ConfigError):
            RunConfig(frontend="stlt", exec_mode="untimed",
                      arrival_process="poisson", offered_load=0.5,
                      **SMOKE)


class TestPrefillState:
    """All modes must observe the identical prefill state."""

    @pytest.mark.parametrize("frontend",
                             ["baseline", "slb", "stlt", "stlt_sw"])
    def test_prefill_digest_is_mode_independent(self, frontend):
        config = RunConfig(frontend=frontend, **SMOKE)
        digests = {
            mode: Engine(
                dataclasses.replace(config, exec_mode=mode)
            ).prefill_digest()
            for mode in ("reference", "batched", "untimed")
        }
        assert digests["batched"] == digests["reference"]
        assert digests["untimed"] == digests["reference"]
        if frontend != "baseline":
            assert digests["reference"] is not None


class TestRecordMovedMidRun:
    """A mid-run record move + Section III-F refresh must leave both
    timed modes in the identical state — the invalidation path runs
    outside the fused kernel, so a drifting view would show up here."""

    KEYS = 120
    MOVED_KEY = 7

    def _drive(self, exec_mode: str) -> dict:
        config = RunConfig(frontend="stlt", exec_mode=exec_mode,
                           num_keys=self.KEYS, measure_ops=30,
                           warmup_ops=0)
        engine = Engine(config)
        executor = BatchedOpExecutor(engine) \
            if exec_mode == "batched" else None

        def get(key_id: int) -> None:
            if executor is not None:
                executor.do_get(0, key_id)
            else:
                engine.bind_core(0)
                engine.do_get(0, key_id)

        for key_id in range(self.KEYS):
            get(key_id)
        # the mid-run move: realloc one hot record, run the paper's
        # refresh protocol (both modes take the reference path here)
        engine.bind_core(0)
        record = engine.frontends[0].index.lookup(
            key_bytes(self.MOVED_KEY))
        assert record is not None
        old_va = engine.ctx.records.move(record)
        engine.notify_record_moved(record, old_va)
        # keep going, including through the moved key
        for key_id in range(self.KEYS):
            get(key_id)
        if executor is not None:
            executor._flush(executor._views[0])
        mem = engine.ctx.core_mem(0)
        return {
            "stats": asdict(mem.stats),
            "attr": dict(mem.attr),
            "now": mem.now,
            "table": engine.prefill_digest(),
            "gets": engine.frontends[0].gets,
            "fast_hits": engine.frontends[0].fast_hits,
            "oracle": (engine.oracle.checks, engine.oracle.fast_checks),
            "moved_va": record.va,
        }

    def test_invalidation_behaves_identically(self):
        ref = self._drive("reference")
        bat = self._drive("batched")
        assert bat == ref
        # the move really happened and the refreshed row serves hits
        assert ref["stats"]["accesses"] > 0
