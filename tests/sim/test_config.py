"""RunConfig validation and derived-default tests."""

import pytest

from repro.errors import ConfigError
from repro.params import DEFAULT_MACHINE
from repro.sim.config import RunConfig


class TestValidation:
    def test_defaults_are_valid(self):
        RunConfig()

    def test_unknown_program(self):
        with pytest.raises(ConfigError):
            RunConfig(program="rocksdb")

    def test_unknown_frontend(self):
        with pytest.raises(ConfigError):
            RunConfig(frontend="magic")

    def test_unknown_distribution(self):
        with pytest.raises(ConfigError):
            RunConfig(distribution="pareto")

    def test_unknown_prefetcher(self):
        with pytest.raises(ConfigError):
            RunConfig(prefetchers=("ghb",))

    def test_nonpositive_counts(self):
        with pytest.raises(ConfigError):
            RunConfig(num_keys=0)
        with pytest.raises(ConfigError):
            RunConfig(measure_ops=0)


class TestDerivedDefaults:
    def test_warmup_defaults_to_4x_measure(self):
        cfg = RunConfig(measure_ops=1000)
        assert cfg.effective_warmup_ops == 4000
        assert cfg.total_ops == 5000

    def test_explicit_warmup_respected(self):
        cfg = RunConfig(measure_ops=1000, warmup_ops=100)
        assert cfg.effective_warmup_ops == 100

    def test_stlt_rows_target_paper_ratio(self):
        cfg = RunConfig(num_keys=163840)
        # 3.2 rows per key, at the nearest power of two
        assert cfg.effective_stlt_rows == 524288

    def test_stlt_rows_are_power_of_two(self):
        for keys in (1000, 33333, 100000):
            rows = RunConfig(num_keys=keys).effective_stlt_rows
            assert rows & (rows - 1) == 0

    def test_explicit_rows_respected(self):
        assert RunConfig(stlt_rows=4096).effective_stlt_rows == 4096

    def test_slb_entries_default_to_stlt_rows(self):
        cfg = RunConfig(stlt_rows=8192)
        assert cfg.effective_slb_entries == 8192

    def test_slow_hash_per_program(self):
        assert RunConfig(program="redis").slow_hash == "siphash"
        assert RunConfig(program="btree").slow_hash == "murmur"

    def test_with_frontend(self):
        cfg = RunConfig(frontend="baseline")
        assert cfg.with_frontend("stlt").frontend == "stlt"
        assert cfg.with_frontend("stlt").num_keys == cfg.num_keys

    def test_default_machine_is_scaled(self):
        cfg = RunConfig()
        assert cfg.machine.l3.size_bytes < DEFAULT_MACHINE.l3.size_bytes


class TestSerialisationAndHash:
    def test_to_dict_from_dict_round_trip(self):
        cfg = RunConfig(program="redis", frontend="stlt", num_keys=5000,
                        measure_ops=800, prefetchers=("stream", "vldp"),
                        machine=DEFAULT_MACHINE)
        rebuilt = RunConfig.from_dict(cfg.to_dict())
        assert rebuilt == cfg

    def test_from_dict_survives_json(self):
        import json
        cfg = RunConfig(program="btree", prefetchers=("tlb_distance",))
        data = json.loads(json.dumps(cfg.to_dict()))
        assert RunConfig.from_dict(data) == cfg

    def test_from_dict_rejects_unknown_field(self):
        data = RunConfig().to_dict()
        data["turbo"] = True
        with pytest.raises(ConfigError):
            RunConfig.from_dict(data)

    def test_content_hash_stable(self):
        a = RunConfig(num_keys=1234)
        b = RunConfig(num_keys=1234)
        assert a.content_hash == b.content_hash
        assert len(a.content_hash) == 64

    def test_content_hash_distinguishes_every_surface_field(self):
        base = RunConfig()
        variants = [
            RunConfig(program="redis"),
            RunConfig(frontend="slb"),
            RunConfig(distribution="uniform"),
            RunConfig(value_size=128),
            RunConfig(num_keys=base.num_keys + 1),
            RunConfig(measure_ops=base.measure_ops + 1),
            RunConfig(warmup_ops=7),
            RunConfig(stlt_rows=2048),
            RunConfig(stlt_ways=8),
            RunConfig(fast_hash="djb2"),
            RunConfig(slb_entries=512),
            RunConfig(prefetchers=("stream",)),
            RunConfig(prefill=False),
            RunConfig(seed=2),
        ]
        hashes = {v.content_hash for v in variants}
        assert len(hashes) == len(variants)
        assert base.content_hash not in hashes

    def test_content_hash_sees_the_machine(self):
        """Regression: the old benchmark cache key omitted the machine,
        so changing the machine model could serve stale results."""
        scaled = RunConfig()
        literal = RunConfig(machine=DEFAULT_MACHINE)
        assert scaled.content_hash != literal.content_hash

    def test_content_hash_sees_nested_machine_fields(self):
        from dataclasses import replace
        from repro.params import CacheParams
        tweaked = replace(
            DEFAULT_MACHINE,
            l3=CacheParams("L3", 4 * 1024 * 1024, 8, 40))
        a = RunConfig(machine=DEFAULT_MACHINE)
        b = RunConfig(machine=tweaked)
        assert a.content_hash != b.content_hash
