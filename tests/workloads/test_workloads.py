"""Workload generation tests: keys, distributions, operation streams."""

import collections

import pytest

from repro.errors import ConfigError
from repro.workloads.distributions import (
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
    fnv64,
    make_chooser,
)
from repro.workloads.keys import KEY_BYTES, key_bytes
from repro.workloads.ycsb import Operation, WorkloadSpec, generate_operations


class TestKeys:
    def test_keys_are_24_bytes(self):
        for key_id in (0, 1, 999_999, 10**19):
            assert len(key_bytes(key_id)) == KEY_BYTES

    def test_keys_are_unique(self):
        keys = {key_bytes(i) for i in range(10_000)}
        assert len(keys) == 10_000

    def test_prefix(self):
        assert key_bytes(7).startswith(b"user")

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            key_bytes(-1)
        with pytest.raises(ConfigError):
            key_bytes(10**20)


class TestZipfian:
    def test_range(self):
        chooser = ZipfianChooser(1000, seed=1)
        for _ in range(5000):
            assert 0 <= chooser.choose() < 1000

    def test_skew(self):
        chooser = ZipfianChooser(10_000, seed=2)
        counts = collections.Counter(chooser.choose() for _ in range(50_000))
        top_share = sum(c for _, c in counts.most_common(100)) / 50_000
        # with alpha=0.99, the hottest 1% of keys get a large share
        assert top_share > 0.3

    def test_scrambling_spreads_hot_keys(self):
        chooser = ZipfianChooser(10_000, seed=3)
        hot = [k for k, _ in collections.Counter(
            chooser.choose() for _ in range(20_000)).most_common(10)]
        # scrambled zipfian: hot keys are NOT the low ids
        assert max(hot) > 100

    def test_deterministic_under_seed(self):
        a = ZipfianChooser(1000, seed=9)
        b = ZipfianChooser(1000, seed=9)
        assert [a.choose() for _ in range(100)] == \
            [b.choose() for _ in range(100)]

    def test_alpha_validated(self):
        with pytest.raises(ConfigError):
            ZipfianChooser(100, alpha=1.5)

    def test_fnv64_is_stable(self):
        assert fnv64(0) == fnv64(0)
        assert fnv64(1) != fnv64(2)


class TestLatest:
    def test_prefers_new_keys(self):
        chooser = LatestChooser(10_000, seed=4)
        draws = [chooser.choose() for _ in range(20_000)]
        newest_share = sum(d >= 9_000 for d in draws) / len(draws)
        assert newest_share > 0.5

    def test_insert_shifts_hotspot(self):
        chooser = LatestChooser(100, seed=5)
        for new_id in range(100, 200):
            chooser.observe_insert(new_id)
        draws = [chooser.choose() for _ in range(5000)]
        assert max(draws) >= 190
        assert all(0 <= d < 200 for d in draws)

    def test_dense_insert_order_enforced(self):
        chooser = LatestChooser(10)
        with pytest.raises(ConfigError):
            chooser.observe_insert(15)


class TestUniform:
    def test_roughly_even(self):
        chooser = UniformChooser(100, seed=6)
        counts = collections.Counter(chooser.choose() for _ in range(50_000))
        assert min(counts.values()) > 300
        assert max(counts.values()) < 800

    def test_make_chooser(self):
        assert isinstance(make_chooser("uniform", 10), UniformChooser)
        assert isinstance(make_chooser("zipf", 10), ZipfianChooser)
        assert isinstance(make_chooser("latest", 10), LatestChooser)
        with pytest.raises(ConfigError):
            make_chooser("pareto", 10)


class TestWorkloadSpec:
    def test_latest_defaults_to_5_percent_sets(self):
        assert WorkloadSpec(distribution="latest").set_fraction == 0.05

    def test_other_distributions_are_get_only(self):
        assert WorkloadSpec(distribution="zipf").set_fraction == 0.0
        assert WorkloadSpec(distribution="uniform").set_fraction == 0.0

    def test_invalid_value_size(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(value_size=0)

    def test_label(self):
        assert WorkloadSpec("zipf", 128).label == "zipf-128B"


class TestOperationStream:
    def test_get_only_stream(self):
        spec = WorkloadSpec("zipf", 64)
        ops = list(generate_operations(spec, 100, 500, seed=1))
        assert len(ops) == 500
        assert all(op is Operation.GET for op, _ in ops)
        assert all(0 <= key_id < 100 for _, key_id in ops)

    def test_latest_stream_inserts_fresh_dense_ids(self):
        spec = WorkloadSpec("latest", 64)
        ops = list(generate_operations(spec, 100, 2000, seed=2))
        sets = [key_id for op, key_id in ops if op is Operation.SET]
        assert sets == list(range(100, 100 + len(sets)))
        share = len(sets) / len(ops)
        assert 0.03 < share < 0.07

    def test_gets_can_reach_inserted_keys(self):
        spec = WorkloadSpec("latest", 64)
        ops = list(generate_operations(spec, 50, 4000, seed=3))
        max_set = max((k for op, k in ops if op is Operation.SET), default=0)
        max_get = max(k for op, k in ops if op is Operation.GET)
        assert max_get > 50  # GETs reach beyond the initial keyspace
        assert max_get <= max_set

    def test_deterministic(self):
        spec = WorkloadSpec("latest", 64)
        a = list(generate_operations(spec, 100, 300, seed=9))
        b = list(generate_operations(spec, 100, 300, seed=9))
        assert a == b


class TestStridedStreams:
    """Per-core fresh-key namespaces (multi-core engine, PR 2)."""

    def _fresh_ids(self, core_id, num_cores, seed=7):
        spec = WorkloadSpec(distribution="latest")
        ops = generate_operations(
            spec, 100, 400, seed=seed,
            first_new_id=100 + core_id, new_id_stride=num_cores)
        return [key_id for op, key_id in ops if op is Operation.SET]

    def test_default_namespace_is_identity(self):
        spec = WorkloadSpec(distribution="latest")
        explicit = list(generate_operations(
            spec, 100, 400, seed=3, first_new_id=100, new_id_stride=1))
        implicit = list(generate_operations(spec, 100, 400, seed=3))
        assert explicit == implicit

    def test_cores_never_collide_on_fresh_keys(self):
        num_cores = 4
        all_ids = []
        for core_id in range(num_cores):
            ids = self._fresh_ids(core_id, num_cores, seed=7 + core_id)
            assert all(i >= 100 for i in ids)
            assert all((i - 100) % num_cores == core_id for i in ids)
            all_ids.extend(ids)
        assert len(all_ids) == len(set(all_ids))

    def test_strided_gets_stay_inside_the_streams_namespace(self):
        spec = WorkloadSpec(distribution="latest")
        ops = list(generate_operations(
            spec, 50, 600, seed=11, first_new_id=51, new_id_stride=3))
        fresh = {k for op, k in ops if op is Operation.SET}
        for op, key_id in ops:
            if op is Operation.GET and key_id >= 50:
                # a GET of a fresh key must target a key this stream
                # actually inserted, never a sibling stream's
                assert key_id in fresh

    def test_stride_must_be_positive(self):
        spec = WorkloadSpec(distribution="latest")
        with pytest.raises(ConfigError):
            list(generate_operations(spec, 10, 5, new_id_stride=0))
