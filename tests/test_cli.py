"""CLI tests (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.config import RunConfig, config_hash


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag_prints_version_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.program == "unordered_map"
        assert args.frontend == "stlt"

    def test_invalid_program_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--program", "rocksdb"])

    def test_prefetcher_choices(self):
        args = build_parser().parse_args(
            ["run", "--prefetchers", "vldp", "stream"])
        assert args.prefetchers == ["vldp", "stream"]


class TestCommands:
    def test_hwcost(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "837" in out
        assert "STB" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--keys", "2000", "--ops", "400",
                   "--warmup-ops", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles/op" in out
        assert "table miss" in out

    def test_run_with_baseline_comparison(self, capsys):
        rc = main(["run", "--keys", "2000", "--ops", "400",
                   "--warmup-ops", "800", "--compare-baseline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_breakdown(self, capsys):
        rc = main(["breakdown", "--program", "redis", "--keys", "2000",
                   "--ops", "400", "--warmup-ops", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "addressing share" in out

    def test_run_baseline_frontend_has_no_table(self, capsys):
        rc = main(["run", "--frontend", "baseline", "--keys", "2000",
                   "--ops", "400", "--warmup-ops", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table miss" not in out


RUN_ARGS = ["--keys", "2000", "--ops", "400", "--warmup-ops", "800"]


class TestJsonOutput:
    def test_run_json_is_a_store_record(self, capsys):
        rc = main(["run", "--json"] + RUN_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert set(record) >= {"key", "label", "config", "result", "meta"}
        # the key is the content hash of the exact config that ran
        config = RunConfig.from_dict(record["config"])
        assert record["key"] == config_hash(config)
        assert config.num_keys == 2000
        assert record["result"]["ops"] == 400
        assert record["result"]["cycles"] > 0

    def test_run_json_with_baseline_comparison(self, capsys):
        rc = main(["run", "--json", "--compare-baseline"] + RUN_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["baseline"]["config"]["frontend"] == "baseline"
        assert record["speedup"] > 0

    def test_breakdown_json_carries_shares(self, capsys):
        rc = main(["breakdown", "--json", "--program", "redis"] + RUN_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert set(record) >= {"key", "config", "result", "shares",
                               "addressing_share"}
        assert record["addressing_share"] == pytest.approx(
            sum(record["shares"].get(c, 0.0) for c in
                ("hash", "index", "translation", "compare", "record",
                 "stlt", "slb")))


SERVE_ARGS = ["serve", "--keys", "2000", "--ops", "200",
              "--warmup-ops", "400", "--cores", "2"]


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.arrival == "poisson"
        assert args.load == 0.7
        assert args.dispatch == "round_robin"
        assert args.requests is None

    def test_bad_traffic_choices_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--arrival", "closed"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--dispatch", "random"])

    def test_serve_prints_percentiles_and_queues(self, capsys):
        rc = main(SERVE_ARGS + ["--frontend", "stlt", "--load", "0.7"])
        assert rc == 0
        out = capsys.readouterr().out
        for needle in ("latency p50", "latency p95", "latency p99",
                       "latency p99.9", "offered", "achieved",
                       "closed loop", "queue depth max"):
            assert needle in out, f"serve output missing {needle!r}"
        # one queue line per core
        assert "core 0:" in out and "core 1:" in out

    def test_serve_json_is_a_store_record_with_service(self, capsys):
        rc = main(SERVE_ARGS + ["--json", "--dispatch", "jsq",
                                "--requests", "150"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        config = RunConfig.from_dict(record["config"])
        assert record["key"] == config_hash(config)
        assert config.arrival_process == "poisson"
        assert config.dispatch_policy == "jsq"
        assert config.service_requests == 150
        service = record["result"]["service"]
        assert service["requests"] == 150
        assert set(service["latency"]) == {"p50", "p95", "p99", "p999"}
        assert service["arrival_rate"] > 0.0
        assert service["achieved_throughput"] > 0.0
        assert len(service["per_core"]) == 2
        assert all("max_queue_depth" in core
                   for core in service["per_core"])

    def test_run_records_stay_closed_loop(self, capsys):
        rc = main(["run", "--json"] + RUN_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["config"]["arrival_process"] == "closed"
        assert record["result"]["service"] is None


class TestSweepCommand:
    SPEC = {
        "name": "mini",
        "base": {"num_keys": 400, "measure_ops": 80, "warmup_ops": 160},
        "grid": {"frontend": ["baseline", "stlt"]},
    }

    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_requires_name_xor_spec(self, capsys, tmp_path):
        assert main(["sweep", "--quiet"]) == 2
        assert main(["sweep", "smoke", "--spec",
                     self._spec_file(tmp_path)]) == 2

    def test_sweep_spec_file_runs_and_prints_tables(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        rc = main(["sweep", "--spec", self._spec_file(tmp_path),
                   "--jobs", "2", "--store", store, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 completed, 0 cached, 0 failed" in out
        assert "speedup" in out

    def test_second_invocation_is_cached(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        spec = self._spec_file(tmp_path)
        assert main(["sweep", "--spec", spec, "--jobs", "1",
                     "--store", store, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["sweep", "--spec", spec, "--jobs", "1",
                     "--store", store, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 completed, 2 cached, 0 failed" in out

    def test_sweep_json_emits_one_record_per_point(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        rc = main(["sweep", "--spec", self._spec_file(tmp_path),
                   "--jobs", "1", "--store", store, "--quiet", "--json"])
        assert rc == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        # one record per point plus one trailing summary line (PR 5)
        assert len(lines) == 3
        records, summary = lines[:-1], lines[-1]
        assert {line["status"] for line in records} == {"completed"}
        assert all("result" in line for line in records)
        assert set(summary) == {"summary"}

    def test_sweep_json_summary_reports_store_traffic(self, capsys,
                                                      tmp_path):
        store = str(tmp_path / "store.jsonl")
        spec = self._spec_file(tmp_path)
        rc = main(["sweep", "--spec", spec, "--jobs", "1",
                   "--store", store, "--quiet", "--json"])
        assert rc == 0
        summary = json.loads(
            capsys.readouterr().out.splitlines()[-1])["summary"]
        assert summary["store_hits"] == 0
        assert summary["store_misses"] == 2
        assert summary["wall_seconds"] > 0.0
        assert summary["ok"] is True
        # a second invocation is served entirely from the store
        rc = main(["sweep", "--spec", spec, "--jobs", "1",
                   "--store", store, "--quiet", "--json"])
        assert rc == 0
        summary = json.loads(
            capsys.readouterr().out.splitlines()[-1])["summary"]
        assert summary["store_hits"] == 2
        assert summary["store_misses"] == 0

    def test_sweep_text_summary_has_store_and_wall_line(self, capsys,
                                                        tmp_path):
        store = str(tmp_path / "store.jsonl")
        rc = main(["sweep", "--spec", self._spec_file(tmp_path),
                   "--jobs", "1", "--store", store, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "store: 0 hit(s), 2 miss(es)" in out
        assert "wall" in out

    def test_sweep_list_names_every_builtin(self, capsys):
        from repro.exp.spec import sweep_descriptions

        rc = main(["sweep", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name, description in sweep_descriptions().items():
            assert name in out
            assert description in out
        assert "scale" in out

    def test_open_loop_spec_prints_latency_table(self, capsys, tmp_path):
        spec = {
            "name": "mini-load",
            "base": {"num_keys": 400, "measure_ops": 80,
                     "warmup_ops": 160, "num_cores": 2,
                     "arrival_process": "poisson"},
            "grid": {"frontend": ["baseline", "stlt"],
                     "offered_load": [0.4, 0.9]},
        }
        path = tmp_path / "load.json"
        path.write_text(json.dumps(spec))
        store = str(tmp_path / "store.jsonl")
        rc = main(["sweep", "--spec", str(path), "--jobs", "2",
                   "--store", store, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 completed, 0 cached, 0 failed" in out
        assert "p99" in out
        assert "offered" in out
        assert "no open-loop" not in out

    def test_unknown_named_sweep_fails_loudly(self, capsys, tmp_path):
        # errors exit with their mapped code and one clean stderr line —
        # no traceback spill (PR 4)
        rc = main(["sweep", "definitely-not-a-sweep", "--quiet",
                   "--store", str(tmp_path / "s.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro: ConfigError:" in err
        assert "Traceback" not in err


CHAOS_ARGS = ["--keys", "1500", "--ops", "300", "--warmup-ops", "300"]


class TestExitCodes:
    """Every ReproError subclass maps to a distinct, documented code."""

    def test_mapping_is_stable(self):
        from repro import errors
        from repro.cli import EXIT_CODES, exit_code_for

        assert exit_code_for(errors.ConfigError("x")) == 2
        assert exit_code_for(errors.CoherenceError("x")) == 3
        assert exit_code_for(errors.FaultInjectionError("x")) == 4
        assert exit_code_for(errors.STLTError("x")) == 5
        assert exit_code_for(errors.KVSError("x")) == 6
        assert exit_code_for(errors.AddressError("x")) == 7
        assert exit_code_for(errors.PageFault(0xBAD)) == 8
        assert exit_code_for(errors.AllocationError("x")) == 9
        assert exit_code_for(errors.ReproError("x")) == 10
        assert exit_code_for(errors.ClusterError("x")) == 11
        assert exit_code_for(errors.FailoverError("x")) == 12
        assert exit_code_for(errors.HeteroError("x")) == 13
        # distinctness: no two classes share a code
        assert len(set(EXIT_CODES.values())) == len(EXIT_CODES)

    def test_subclasses_resolve_via_mro(self):
        from repro.cli import exit_code_for
        from repro.errors import CoherenceError

        class FutureCoherenceBug(CoherenceError):
            pass

        assert exit_code_for(FutureCoherenceBug("x")) == 3

    def test_bad_fault_spec_exits_4_with_one_line(self, capsys):
        rc = main(["run", "--fault", "meteor:core=0"] + CHAOS_ARGS)
        assert rc == 4
        captured = capsys.readouterr()
        assert "repro: FaultInjectionError:" in captured.err
        assert "meteor" in captured.err
        assert "Traceback" not in captured.err
        assert captured.out == ""

    def test_fault_on_missing_core_exits_4(self, capsys):
        rc = main(["run", "--fault", "slowdown:core=7,factor=2"]
                  + CHAOS_ARGS)
        assert rc == 4
        assert "core 7" in capsys.readouterr().err

    def test_bad_churn_rate_exits_2(self, capsys):
        rc = main(["run", "--churn-rate", "1.5"] + CHAOS_ARGS)
        assert rc == 2
        assert "repro: ConfigError:" in capsys.readouterr().err


class TestFailoverExitCode:
    """FailoverError gets its own code (12), distinct from the generic
    cluster code (11) despite subclassing ClusterError — the explicit
    EXIT_CODES entry wins over the MRO walk (satellite: PR 9)."""

    def test_failover_beats_its_cluster_superclass(self):
        from repro import errors
        from repro.cli import exit_code_for

        assert issubclass(errors.FailoverError, errors.ClusterError)
        assert exit_code_for(errors.FailoverError("x")) == 12
        assert exit_code_for(errors.ClusterError("x")) == 11

    def test_bad_node_fault_spec_exits_4_with_one_line(self, capsys):
        rc = main(["cluster", "--nodes", "2",
                   "--node-fault-plan", "meteor:node=0"] + CHAOS_ARGS)
        assert rc == 4
        captured = capsys.readouterr()
        assert "repro: FaultInjectionError:" in captured.err
        assert "meteor" in captured.err
        assert "Traceback" not in captured.err

    def test_fault_on_missing_node_exits_4(self, capsys):
        rc = main(["cluster", "--nodes", "3",
                   "--node-fault-plan", "crash:node=7,at=0.5"]
                  + CHAOS_ARGS)
        assert rc == 4
        assert "node 7" in capsys.readouterr().err

    def test_failover_violation_exits_12_with_one_line(self, capsys,
                                                       monkeypatch):
        # an actual oracle violation requires a buggy promotion, which
        # the simulator (correctly) refuses to produce — exercise the
        # CLI contract at the seam the real exception crosses
        import repro.cli as cli
        from repro.errors import FailoverError

        def boom(config):
            raise FailoverError(
                "failover oracle: 1 acknowledged write(s) with a live "
                "replica at ack time did not survive to the end of "
                "the run")

        monkeypatch.setattr(cli, "run_experiment", boom)
        rc = main(["cluster", "--nodes", "3", "--replicas", "1",
                   "--node-fault-plan", "crash:node=1,at=0.5"]
                  + CHAOS_ARGS)
        assert rc == 12
        captured = capsys.readouterr()
        assert "repro: FailoverError:" in captured.err
        assert "acknowledged write" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.count("\n") == 1


class TestChaosCommand:
    def test_chaos_defaults_to_some_churn(self):
        args = build_parser().parse_args(["chaos"])
        assert args.churn_rate == 0.05

    def test_chaos_without_adversity_is_a_usage_error(self, capsys):
        rc = main(["chaos", "--churn-rate", "0"] + CHAOS_ARGS)
        assert rc == 2
        assert "nothing to inject" in capsys.readouterr().err

    def test_chaos_prints_telemetry(self, capsys):
        rc = main(["chaos", "--frontend", "stlt", "--cores", "2",
                   "--churn-rate", "0.05"] + CHAOS_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        for needle in ("churn rate", "chaos events", "churn volume",
                       "IPB overflows", "oracle"):
            assert needle in out, f"chaos output missing {needle!r}"
        assert "0 violations" in out

    def test_chaos_compare_baseline_reports_retained_speedup(self, capsys):
        rc = main(["chaos", "--frontend", "stlt", "--churn-rate", "0.02",
                   "--compare-baseline"] + CHAOS_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "under" in out

    def test_chaos_json_record_carries_chaos_payload(self, capsys):
        rc = main(["chaos", "--json", "--frontend", "stlt",
                   "--churn-rate", "0.05"] + CHAOS_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        config = RunConfig.from_dict(record["config"])
        assert record["key"] == config_hash(config)
        assert config.churn_rate == 0.05
        chaos = record["result"]["chaos"]
        assert chaos["oracle"]["violations"] == 0
        assert sum(chaos["events"].values()) >= 0

    def test_fault_plan_via_repeated_flags(self, capsys):
        rc = main(["chaos", "--json", "--cores", "2", "--churn-rate", "0",
                   "--fault", "slowdown:core=1,factor=2",
                   "--fault", "stall:core=0,cycles=50"] + CHAOS_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["config"]["fault_plan"] == [
            "slowdown:core=1,factor=2", "stall:core=0,cycles=50"]
        assert record["result"]["chaos"]["fault_cycles_charged"] > 0


class TestServeMitigationFlags:
    def test_defaults_are_quiet(self):
        args = build_parser().parse_args(["serve"])
        assert args.timeout is None
        assert args.retries == 0
        assert args.backoff == 2.0
        assert args.hedge is None
        assert args.fallback is False

    def test_mitigated_serve_prints_mitigation_line(self, capsys):
        rc = main(["serve", "--cores", "2", "--frontend", "stlt",
                   "--load", "0.9", "--fault", "slowdown:core=1,factor=4",
                   "--timeout", "6", "--retries", "2", "--hedge", "4",
                   "--fallback"] + CHAOS_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "mitigation" in out
        assert "fault plan" in out

    def test_mitigation_knobs_land_in_json_record(self, capsys):
        rc = main(["serve", "--json", "--cores", "2", "--timeout", "6",
                   "--retries", "1"] + CHAOS_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["config"]["svc_timeout"] == 6.0
        assert record["config"]["svc_retries"] == 1
        service = record["result"]["service"]
        assert service["mitigation"]["retries"] == 1
        assert service["mitigation"]["timeout_cycles"] > 0


CLUSTER_ARGS = ["--keys", "1500", "--ops", "300", "--warmup-ops", "300"]


class TestClusterCommand:
    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.nodes == 3
        assert args.replicas == 0
        assert args.no_route_cache is False
        assert args.batch == 1
        assert args.clients == 8
        assert args.migrate_rate == 0.0
        assert args.net_rtt == 0.0
        assert args.arrival == "poisson"

    def test_single_quiet_node_is_a_usage_error(self, capsys):
        rc = main(["cluster", "--nodes", "1"] + CLUSTER_ARGS)
        assert rc == 2
        assert "nothing to shard" in capsys.readouterr().err

    def test_cluster_prints_fleet_telemetry(self, capsys):
        rc = main(["cluster", "--nodes", "3", "--cores", "2",
                   "--frontend", "stlt"] + CLUSTER_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        for needle in ("fleet", "achieved", "latency p99", "route cache",
                       "MOVED", "oracle", "node 0:", "node 2:"):
            assert needle in out, f"cluster output missing {needle!r}"
        assert "oracle        : OK" in out
        assert "VIOLATIONS" not in out

    def test_cluster_json_record_carries_cluster_payload(self, capsys):
        rc = main(["cluster", "--json", "--nodes", "2", "--cores", "2",
                   "--net-rtt", "200", "--migrate-rate", "0.01",
                   "--replicas", "1"] + CLUSTER_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        config = RunConfig.from_dict(record["config"])
        assert record["key"] == config_hash(config)
        assert config.nodes == 2
        assert config.replicas == 1
        assert config.net_rtt_cycles == 200.0
        cluster = record["result"]["cluster"]
        assert cluster["nodes"] == 2
        assert cluster["oracle_violations"] == 0
        assert cluster["achieved_throughput"] > 0
        assert set(cluster["latency"]) == {"p50", "p95", "p99", "p999"}
        assert len(cluster["per_node"]) == 2

    def test_one_node_rtt_anchor_runs_through_the_overlay(self, capsys):
        rc = main(["cluster", "--json", "--nodes", "1",
                   "--net-rtt", "300"] + CLUSTER_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        cluster = record["result"]["cluster"]
        assert cluster["nodes"] == 1
        assert cluster["network"]["rtt_cycles"] == 300.0
        assert "net300" in record["label"]

    def test_no_route_cache_bounces_through_moved(self, capsys):
        rc = main(["cluster", "--json", "--nodes", "4",
                   "--no-route-cache"] + CLUSTER_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        cluster = record["result"]["cluster"]
        assert cluster["route_cache"] is False
        assert cluster["route_hits"] == 0
        assert cluster["moved_redirects"] > 0
        assert cluster["oracle_violations"] == 0


class TestHeteroCommand:
    """--node-types: fleet grammar, exit code 13, hetero telemetry
    (satellite: PR 10)."""

    def test_hetero_beats_its_cluster_superclass(self):
        from repro import errors
        from repro.cli import exit_code_for

        assert issubclass(errors.HeteroError, errors.ClusterError)
        assert exit_code_for(errors.HeteroError("x")) == 13
        assert exit_code_for(errors.ClusterError("x")) == 11

    def test_nodes_default_is_unchanged(self):
        args = build_parser().parse_args(["cluster"])
        assert args.nodes == 3
        assert args.node_types is None

    def test_node_types_derives_the_node_count(self, capsys):
        rc = main(["cluster", "--json", "--node-types", "3full+1accel",
                   "--cores", "2"] + CLUSTER_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        config = RunConfig.from_dict(record["config"])
        assert config.nodes == 4
        assert len(record["result"]["cluster"]["per_node"]) == 4

    def test_bad_node_types_exits_13_with_one_line(self, capsys):
        rc = main(["cluster", "--node-types", "3accel"] + CLUSTER_ARGS)
        assert rc == 13
        captured = capsys.readouterr()
        assert "repro: HeteroError:" in captured.err
        assert "full" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.count("\n") == 1
        assert captured.out == ""

    def test_unknown_class_exits_13(self, capsys):
        rc = main(["cluster", "--node-types", "2full+1turbo"]
                  + CLUSTER_ARGS)
        assert rc == 13
        assert "turbo" in capsys.readouterr().err

    def test_mixed_fleet_prints_hetero_telemetry(self, capsys):
        rc = main(["cluster", "--node-types", "2full+1accel",
                   "--cores", "2", "--frontend", "stlt"] + CLUSTER_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        for needle in ("fleet mix", "2full+1accel", "accel GETs",
                       "fallbacks", "cost-normal", "capab. oracle"):
            assert needle in out, f"hetero output missing {needle!r}"
        assert "VIOLATIONS" not in out

    def test_homogeneous_output_has_no_hetero_lines(self, capsys):
        rc = main(["cluster", "--nodes", "3", "--cores", "2"]
                  + CLUSTER_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet mix" not in out
        assert "capab. oracle" not in out

    def test_mixed_fleet_json_carries_hetero_payload(self, capsys):
        rc = main(["cluster", "--json", "--node-types", "2full+1accel",
                   "--accel-keys", "1024", "--big-key-fraction", "0.2",
                   "--cores", "2"] + CLUSTER_ARGS)
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        config = RunConfig.from_dict(record["config"])
        assert config.node_types == "2full+1accel"
        assert config.hetero_accel_keys == 1024
        hetero = record["result"]["cluster"]["hetero"]
        assert hetero["node_types"] == "2full+1accel"
        assert hetero["accel_keys"] == 1024
        assert hetero["big_key_fraction"] == 0.2
        assert hetero["capability_violations"] == 0

    def test_sweep_list_includes_hetero(self, capsys):
        rc = main(["sweep", "--list"])
        assert rc == 0
        assert "hetero" in capsys.readouterr().out

    def test_hwcost_kv_accel_block(self, capsys):
        rc = main(["hwcost", "--kv-accel"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total bytes: 837" in out  # Table I untouched
        assert "kv-accel node" in out
        assert "Pearson hash tables" in out

    def test_hwcost_default_output_unchanged(self, capsys):
        rc = main(["hwcost"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total bytes: 837" in out
        assert "kv-accel" not in out
