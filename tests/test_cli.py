"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.program == "unordered_map"
        assert args.frontend == "stlt"

    def test_invalid_program_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--program", "rocksdb"])

    def test_prefetcher_choices(self):
        args = build_parser().parse_args(
            ["run", "--prefetchers", "vldp", "stream"])
        assert args.prefetchers == ["vldp", "stream"]


class TestCommands:
    def test_hwcost(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "837" in out
        assert "STB" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--keys", "2000", "--ops", "400",
                   "--warmup-ops", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles/op" in out
        assert "table miss" in out

    def test_run_with_baseline_comparison(self, capsys):
        rc = main(["run", "--keys", "2000", "--ops", "400",
                   "--warmup-ops", "800", "--compare-baseline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_breakdown(self, capsys):
        rc = main(["breakdown", "--program", "redis", "--keys", "2000",
                   "--ops", "400", "--warmup-ops", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "addressing share" in out

    def test_run_baseline_frontend_has_no_table(self, capsys):
        rc = main(["run", "--frontend", "baseline", "--keys", "2000",
                   "--ops", "400", "--warmup-ops", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table miss" not in out
