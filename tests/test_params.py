"""Machine-parameter tests: Table III defaults and the scaled machine."""

import pytest

from repro.errors import ConfigError
from repro.params import (
    DEFAULT_MACHINE,
    SCALED_MACHINE,
    SEED_NAMESPACES,
    CacheParams,
    MachineParams,
    TLBParams,
    derive_seed,
    ns_to_cycles,
    scaled_machine,
)


class TestTableIIIDefaults:
    def test_cache_geometry(self):
        assert DEFAULT_MACHINE.l1d.size_bytes == 32 * 1024
        assert DEFAULT_MACHINE.l1d.ways == 8
        assert DEFAULT_MACHINE.l1d.latency == 4
        assert DEFAULT_MACHINE.l2.size_bytes == 256 * 1024
        assert DEFAULT_MACHINE.l2.latency == 12
        assert DEFAULT_MACHINE.l3.size_bytes == 2 * 1024 * 1024
        assert DEFAULT_MACHINE.l3.latency == 40

    def test_tlb_geometry(self):
        assert DEFAULT_MACHINE.dtlb.entries == 64
        assert DEFAULT_MACHINE.dtlb.latency == 1
        assert DEFAULT_MACHINE.stlb.entries == 1536
        assert DEFAULT_MACHINE.stlb.latency == 7

    def test_memory_latency_45ns(self):
        # 45 ns at 2.66 GHz
        assert DEFAULT_MACHINE.dram.latency_cycles == ns_to_cycles(45.0)
        assert ns_to_cycles(45.0) == 120

    def test_instruction_latencies(self):
        assert DEFAULT_MACHINE.instr.load_va_cycles == 6
        assert DEFAULT_MACHINE.instr.insert_stlt_cycles == 4

    def test_validation_passes(self):
        DEFAULT_MACHINE.validate()


class TestScaledMachine:
    def test_capacities_shrink_latencies_do_not(self):
        assert SCALED_MACHINE.l3.size_bytes < DEFAULT_MACHINE.l3.size_bytes
        assert SCALED_MACHINE.l3.latency == DEFAULT_MACHINE.l3.latency
        assert SCALED_MACHINE.stlb.entries < DEFAULT_MACHINE.stlb.entries
        assert SCALED_MACHINE.stlb.latency == DEFAULT_MACHINE.stlb.latency

    def test_factor_one_keeps_capacities(self):
        machine = scaled_machine(1)
        assert machine.l3.size_bytes == DEFAULT_MACHINE.l3.size_bytes

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            scaled_machine(0)

    def test_minimums_enforced(self):
        machine = scaled_machine(1_000_000)
        machine.validate()
        assert machine.dtlb.entries >= 16

    def test_scaled_is_valid(self):
        SCALED_MACHINE.validate()


class TestDeriveSeed:
    """The shared seed-namespacing helper (extracted in PR 5).

    The registered salts are *frozen*: they are the literal XOR masks
    the subsystems used before the helper existed, so every stream the
    golden regression data was captured with must come out unchanged.
    """

    # (namespace, salt) pairs as they existed inline in the subsystems
    # before the refactor.  Do not edit: changing a salt silently
    # invalidates every pinned golden number downstream of the stream.
    FROZEN = {
        "workload_ops": 0x5EED,      # repro.workloads.ycsb (seed repo)
        "svc_arrival": 0xA221,       # repro.svc.service (PR 3)
        "svc_keystream": 0x5E12,     # repro.svc.service (PR 3)
        "chaos_schedule": 0xC4A0,    # repro.chaos.schedule (PR 4)
        "chaos_target": 0x7A26,      # repro.chaos.injector (PR 4)
    }

    @pytest.mark.parametrize("namespace,salt", sorted(FROZEN.items()))
    @pytest.mark.parametrize("seed", [0, 1, 7, 0x5EED, 123456789])
    def test_registered_streams_unchanged(self, namespace, salt, seed):
        assert derive_seed(seed, namespace) == seed ^ salt

    def test_registry_covers_frozen_salts(self):
        for namespace, salt in self.FROZEN.items():
            assert SEED_NAMESPACES[namespace] == salt

    def test_registered_namespaces_distinct(self):
        salts = list(SEED_NAMESPACES.values())
        assert len(set(salts)) == len(salts)

    def test_unregistered_namespace_is_stable_and_distinct(self):
        # SHA-256 fallback: any label yields a process-stable stream
        a = derive_seed(42, "node3")
        assert a == derive_seed(42, "node3")
        assert a != derive_seed(42, "node4")
        assert a != derive_seed(43, "node3")
        # and it never collides with simply using the seed itself
        assert a != 42

    def test_fallback_does_not_shadow_registry(self):
        # a registered name uses its frozen salt, not the hash fallback
        import hashlib
        digest = hashlib.sha256(b"workload_ops").digest()
        hashed = 42 ^ int.from_bytes(digest[:8], "big")
        assert derive_seed(42, "workload_ops") == 42 ^ 0x5EED != hashed


class TestParamValidation:
    def test_bad_cache_size(self):
        with pytest.raises(ConfigError):
            CacheParams("x", 1000, 2, 1).validate()

    def test_bad_tlb_ways(self):
        with pytest.raises(ConfigError):
            TLBParams("x", 10, 3, 1).validate()

    def test_bad_page_size(self):
        machine = MachineParams(page_bytes=5000)
        with pytest.raises(ConfigError):
            machine.validate()
