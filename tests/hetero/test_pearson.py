"""Pearson dual-hash tests: frozen tables, widening, slot mapping."""

import pytest

from repro.hetero.pearson import (
    TABLE_1,
    TABLE_2,
    TABLE_SIZE,
    dual_hash,
    make_table,
    pearson_hash,
)


class TestTables:
    def test_tables_are_permutations(self):
        assert sorted(TABLE_1) == list(range(TABLE_SIZE))
        assert sorted(TABLE_2) == list(range(TABLE_SIZE))

    def test_tables_are_distinct(self):
        assert TABLE_1 != TABLE_2

    def test_tables_are_frozen(self):
        """Residency must be a pure function of the install sequence:
        the tables regenerate bit-identically from their pinned seeds."""
        assert make_table(0x9E3779B1) == TABLE_1
        assert make_table(0x85EBCA77) == TABLE_2


class TestPearsonHash:
    def test_deterministic(self):
        assert pearson_hash(b"key-7") == pearson_hash(b"key-7")

    def test_fits_width(self):
        for width in (1, 4, 8, 11, 12, 16):
            h = pearson_hash(b"some key", width_bits=width)
            assert 0 <= h < (1 << width)

    def test_byte_widening_is_not_replication(self):
        """Wide hashes come from independent per-byte walks, not from
        repeating the 8-bit hash."""
        wide = pearson_hash(b"abcdef", width_bits=16)
        narrow = pearson_hash(b"abcdef", width_bits=8)
        assert wide != narrow | (narrow << 8)

    def test_single_byte_keys_spread(self):
        values = {pearson_hash(bytes([b])) for b in range(256)}
        assert len(values) == 256  # a permutation of one byte

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            pearson_hash(b"")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            pearson_hash(b"x", width_bits=0)


class TestDualHash:
    def test_slots_in_range(self):
        for i in range(64):
            h1, h2 = dual_hash(f"key-{i}".encode(), 4096)
            assert 0 <= h1 < 4096
            assert 0 <= h2 < 4096

    def test_two_independent_slots(self):
        """The two tables give (almost always) different candidates —
        the point of dual hashing."""
        differing = sum(
            1 for i in range(256)
            if len(set(dual_hash(f"key-{i}".encode(), 4096))) == 2)
        assert differing > 240

    def test_non_power_of_two_capacity_rejected(self):
        with pytest.raises(ValueError):
            dual_hash(b"x", 1000)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            dual_hash(b"x", 1)
