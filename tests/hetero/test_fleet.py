"""--node-types grammar and fleet cost accounting tests."""

import pytest

from repro.errors import HeteroError
from repro.hetero.capability import (
    ACCEL_NODE_COST_UNITS,
    accel_capability,
    full_capability,
)
from repro.hetero.fleet import (
    class_counts,
    fleet_cost,
    format_node_types,
    has_accel,
    parse_node_types,
    slot_weight,
)


class TestGrammar:
    def test_counts_expand_in_order(self):
        assert parse_node_types("2full+1accel") == \
            ("full", "full", "accel")

    def test_count_defaults_to_one(self):
        assert parse_node_types("full+accel") == ("full", "accel")

    def test_whitespace_tolerated(self):
        assert parse_node_types(" 2full + 1accel ") == \
            ("full", "full", "accel")

    @pytest.mark.parametrize("bad", [
        "", "   ", "2turbo", "full+", "-1full", "2full+0accel",
        "fullaccel", "2 full",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(HeteroError):
            parse_node_types(bad)

    def test_all_accel_fleet_rejected(self):
        """Accelerators are GET-only: a fleet with no full node could
        not serve a single write."""
        with pytest.raises(HeteroError, match="full"):
            parse_node_types("3accel")

    def test_format_is_canonical(self):
        classes = parse_node_types("full+accel+full")
        assert format_node_types(classes) == "2full+1accel"
        assert format_node_types(parse_node_types("3full")) == "3full"


class TestFleetAccounting:
    def test_class_counts(self):
        assert class_counts(("full", "accel", "full")) == \
            {"full": 2, "accel": 1}

    def test_has_accel(self):
        assert has_accel(("full", "accel"))
        assert not has_accel(("full", "full"))

    def test_fleet_cost_sums_class_units(self):
        assert fleet_cost(("full", "full", "accel")) == \
            2.0 + ACCEL_NODE_COST_UNITS
        assert fleet_cost(("full",) * 3) == 3.0

    def test_slot_weight_favors_the_accel_pipeline(self):
        assert slot_weight("full") == 1
        assert slot_weight("accel") > 1


class TestCapabilities:
    def test_full_serves_everything(self):
        cap = full_capability()
        assert cap.can_serve("get", 10_000)
        assert cap.can_serve("set", 10_000)

    def test_accel_is_get_only_small_key(self):
        cap = accel_capability()
        assert cap.can_serve("get", 255)
        assert not cap.can_serve("get", 256)
        assert not cap.can_serve("set", 8)

    def test_accel_costs_a_fraction_of_a_full_node(self):
        assert 0 < accel_capability().cost_units < \
            full_capability().cost_units
