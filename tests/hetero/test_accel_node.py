"""Accelerator node model tests: residency, cost model, key limits."""

import pytest

from repro.errors import HeteroError
from repro.hetero.accel_node import (
    KEY_LIMIT_BYTES,
    LOOKUP_BASE_CYCLES,
    WORD_BYTES,
    AccelNodeModel,
    delete_cycles,
    install_cycles,
    lookup_interval_cycles,
    lookup_latency_cycles,
    reserve_cycles,
    value_words,
)


class TestCostModel:
    def test_hash_walk_is_byte_serial(self):
        """A lookup's latency grows one cycle per key byte — the
        Pearson walk reads one table entry per byte."""
        base = lookup_latency_cycles(8, 64)
        assert lookup_latency_cycles(9, 64) == base + 1

    def test_value_streams_by_words(self):
        assert value_words(64) == 8
        assert value_words(65) == 9
        assert value_words(1) == 1
        assert value_words(0) == 1  # the reply always carries a word
        assert lookup_latency_cycles(8, 64) == 8 + LOOKUP_BASE_CYCLES + 8

    def test_initiation_interval_is_the_longer_stream(self):
        """Back-to-back lookups are gated by whichever of the key walk
        and the value stream runs longer."""
        assert lookup_interval_cycles(24, 64) == 24
        assert lookup_interval_cycles(8, 64 * WORD_BYTES) == 64
        assert lookup_interval_cycles(24, 64) < lookup_latency_cycles(24, 64)

    def test_install_sequence_cost(self):
        """Reserve + two associates + value words; an eviction adds an
        explicit delete of the displaced key."""
        clean = install_cycles(16, 64)
        assert clean == reserve_cycles(16) + 2 + value_words(64)
        assert install_cycles(16, 64, evicted_key_len=10) == \
            clean + delete_cycles(10)


class TestResidency:
    def test_install_then_resident(self):
        model = AccelNodeModel(64)
        assert not model.resident(b"alpha")
        assert model.install(b"alpha") is None
        assert model.resident(b"alpha")
        assert len(model) == 1

    def test_reinstall_is_a_refresh(self):
        model = AccelNodeModel(64)
        model.install(b"alpha")
        assert model.install(b"alpha") is None
        assert len(model) == 1
        assert model.installs == 1  # a refresh mutates nothing

    def test_delete_frees_the_slot(self):
        model = AccelNodeModel(64)
        model.install(b"alpha")
        assert model.delete(b"alpha")
        assert not model.resident(b"alpha")
        assert not model.delete(b"alpha")  # second delete is a miss

    def test_key_goes_to_a_candidate_slot(self):
        model = AccelNodeModel(64)
        model.install(b"alpha")
        assert model._key_slot[b"alpha"] in model.candidate_slots(b"alpha")

    def test_full_candidate_pair_evicts_deterministically(self):
        """With both candidate slots taken, the first candidate's
        occupant is evicted — same victim every run."""
        a = AccelNodeModel(4)
        b = AccelNodeModel(4)
        keys = [f"key-{i}".encode() for i in range(32)]
        evicted_a = [a.install(k) for k in keys]
        evicted_b = [b.install(k) for k in keys]
        assert evicted_a == evicted_b
        assert a.evictions == b.evictions > 0
        assert len(a) <= 4

    def test_residency_is_a_pure_function_of_the_sequence(self):
        a = AccelNodeModel(16)
        b = AccelNodeModel(16)
        for i in range(100):
            key = f"key-{i % 23}".encode()
            if i % 7 == 3:
                a.delete(key)
                b.delete(key)
            else:
                a.install(key)
                b.install(key)
        assert a._key_slot == b._key_slot

    def test_reset_empties_the_memory(self):
        model = AccelNodeModel(64)
        for i in range(10):
            model.install(f"key-{i}".encode())
        model.reset()
        assert len(model) == 0
        assert not model.resident(b"key-3")


class TestLimits:
    def test_key_limit_byte(self):
        """The reserve instruction carries the length in one byte:
        255 is storable, 256 is not even describable."""
        model = AccelNodeModel(64)
        model.install(b"x" * KEY_LIMIT_BYTES)
        with pytest.raises(HeteroError):
            model.install(b"x" * (KEY_LIMIT_BYTES + 1))

    def test_empty_key_rejected(self):
        with pytest.raises(HeteroError):
            AccelNodeModel(64).install(b"")

    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(HeteroError):
            AccelNodeModel(1000)
        with pytest.raises(HeteroError):
            AccelNodeModel(1)

    def test_report_shape(self):
        model = AccelNodeModel(64)
        model.install(b"alpha")
        report = model.report()
        assert report["capacity_keys"] == 64
        assert report["resident_keys"] == 1
        assert report["installs"] == 1
