"""Tests for cluster failover: fault grammar, scheduler, oracle (PR 9).

Three layers:

* the ``node_fault_plan`` grammar (eager validation, exact round trip);
* the :class:`FailoverScheduler` state machine driven directly against
  a small topology/network — detection windows, promotion commit,
  cancellation, drain, storm determinism;
* end-to-end ``run_cluster`` runs — per-policy determinism, the
  lazy-vs-eager direction pin on post-promotion MOVED redirects, the
  acked-write oracle's verdict (zero violations with a replica; loud
  loss telemetry without one), and the resilient client's counters.
"""

import dataclasses

import pytest

from repro.cluster.failover import (
    DEFAULT_DEGRADE_FACTOR,
    FailoverScheduler,
    NodeFaultSpec,
    parse_node_fault,
)
from repro.cluster.network import ClusterNetwork
from repro.cluster.topology import ClusterTopology
from repro.errors import FaultInjectionError
from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment

SLOTS = 128


def _config(**overrides):
    defaults = dict(
        program="unordered_map",
        frontend="stlt",
        num_keys=400,
        warmup_ops=160,
        measure_ops=80,
        num_cores=2,
        seed=13,
        nodes=3,
        replicas=1,
        net_rtt_cycles=50.0,
        failover_detect_cycles=500.0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------

class TestParseNodeFault:
    def test_crash_and_restart(self):
        crash = parse_node_fault("crash:node=1,at=0.4")
        assert (crash.kind, crash.node, crash.at) == ("crash", 1, 0.4)
        restart = parse_node_fault("restart:node=1,at=0.8")
        assert (restart.kind, restart.node, restart.at) == \
            ("restart", 1, 0.8)

    def test_partition_window(self):
        fault = parse_node_fault("partition:node=2,start=0.3,stop=0.6")
        assert (fault.kind, fault.node) == ("partition", 2)
        assert (fault.start, fault.stop) == (0.3, 0.6)

    def test_degrade_defaults_and_overrides(self):
        fault = parse_node_fault("degrade:node=0")
        assert fault.factor == DEFAULT_DEGRADE_FACTOR
        assert fault.bandwidth_div == DEFAULT_DEGRADE_FACTOR
        fault = parse_node_fault("degrade:node=0,factor=2,bw=8")
        assert (fault.factor, fault.bandwidth_div) == (2.0, 8.0)

    def test_storm(self):
        fault = parse_node_fault("storm:rate=0.01,start=0.2,stop=0.9")
        assert (fault.kind, fault.rate) == ("storm", 0.01)
        assert (fault.start, fault.stop) == (0.2, 0.9)

    @pytest.mark.parametrize("spec", [
        "crash:node=1,at=0.4",
        "restart:node=3,at=1",
        "partition:node=2,start=0.3,stop=0.6",
        "degrade:node=0,factor=2,bw=8,start=0.1,stop=0.9",
        "storm:rate=0.005",
    ])
    def test_round_trip_through_to_spec(self, spec):
        fault = parse_node_fault(spec)
        assert parse_node_fault(fault.to_spec()) == fault

    @pytest.mark.parametrize("bad", [
        "meteor:node=0",                       # unknown kind
        "crash",                               # no colon
        "crash:node=1,at=2.0",                 # at out of range
        "crash:at=0.5",                        # missing node
        "crash:node=-1,at=0.5",                # negative node
        "partition:node=1,start=0.6,stop=0.3",  # inverted window
        "degrade:node=0,factor=0.5",           # factor below one
        "storm:rate=0",                        # rate must be positive
        "storm:node=1,rate=0.1",               # storm takes no node
        "crash:node=1,when=0.5",               # unknown parameter
        "crash:node",                          # not key=value
        "crash:node=x,at=0.5",                 # non-numeric value
    ])
    def test_bad_specs_fail_eagerly(self, bad):
        with pytest.raises(FaultInjectionError):
            parse_node_fault(bad)

    def test_config_validates_plans_eagerly(self):
        with pytest.raises(FaultInjectionError):
            RunConfig(node_fault_plan=("meteor:node=0",))
        with pytest.raises(FaultInjectionError):
            # node bounds checked once the cluster overlay is armed
            _config(node_fault_plan=("crash:node=7,at=0.5",))
        # fleet-only bounds stay quiet while the overlay is off
        RunConfig(node_fault_plan=("crash:node=7,at=0.5",))


# ----------------------------------------------------------------------
# the scheduler state machine
# ----------------------------------------------------------------------

def _scheduler(plan_specs, nodes=3, replicas=1, total=100,
               detect=1_000.0, seed=13):
    topology = ClusterTopology(nodes, replicas=replicas, num_slots=SLOTS)
    network = ClusterNetwork(100.0)
    plan = tuple(parse_node_fault(s) for s in plan_specs)
    scheduler = FailoverScheduler(topology, network, plan, seed, total,
                                  detect_cycles=detect)
    return scheduler, topology, network


class TestFailoverScheduler:
    def test_crash_partitions_then_promotes_after_detection(self):
        scheduler, topology, network = _scheduler(
            ["crash:node=1,at=0.0"])
        scheduler.before_request(0, now=0.0)
        # dead to the network immediately, but not yet demoted
        assert not network.reachable("client0", "node1")
        assert 1 in topology.node_ids
        assert scheduler.promotions == 0
        # the first arrival past the detector's deadline commits
        scheduler.before_request(1, now=1_000.0)
        assert 1 not in topology.node_ids
        assert 1 in topology.down_nodes
        assert scheduler.promotions == 1
        assert scheduler.slots_promoted > 0
        assert topology.max_epoch >= 1

    def test_promotion_lands_on_the_ring_successor(self):
        scheduler, topology, _ = _scheduler(["crash:node=1,at=0.0"])
        victim_slots = topology.slots_of(1)
        successor_of = {slot: topology.replicas_of(slot)[0]
                        for slot in victim_slots}
        scheduler.before_request(0, now=0.0)
        scheduler.before_request(1, now=1_000.0)
        for slot, successor in successor_of.items():
            assert topology.owner(slot) == successor

    def test_heal_inside_the_window_cancels_the_promotion(self):
        scheduler, topology, network = _scheduler(
            ["partition:node=1,start=0.0,stop=0.5"],
            detect=1e9)
        scheduler.before_request(0, now=0.0)
        assert not network.reachable("client0", "node1")
        scheduler.before_request(50, now=10.0)  # the stop edge fires
        assert network.reachable("client0", "node1")
        assert scheduler.cancelled_promotions == 1
        assert scheduler.promotions == 0
        assert 1 in topology.node_ids  # never demoted

    def test_restart_inside_the_window_cancels_the_promotion(self):
        scheduler, topology, _ = _scheduler(
            ["crash:node=1,at=0.0", "restart:node=1,at=0.5"],
            detect=1e9)
        scheduler.before_request(0, now=0.0)
        scheduler.before_request(50, now=10.0)
        assert scheduler.cancelled_promotions == 1
        assert scheduler.promotions == 0
        assert 1 in topology.node_ids

    def test_restart_after_promotion_rejoins_and_rebalances(self):
        scheduler, topology, network = _scheduler(
            ["crash:node=1,at=0.0", "restart:node=1,at=0.5"],
            detect=100.0)
        scheduler.before_request(0, now=0.0)
        scheduler.before_request(10, now=500.0)  # promotion commits
        assert 1 not in topology.node_ids
        scheduler.before_request(50, now=600.0)  # restart fires
        assert 1 in topology.node_ids
        assert 1 not in topology.down_nodes
        assert network.reachable("client0", "node1")
        counts = topology.counts()
        assert sum(counts.values()) == SLOTS
        # the rejoiner steals an equal share; the survivors' remainder
        # can be lopsided by the ring-successor promotion, but never by
        # more than the promotion skew itself
        assert counts[1] == SLOTS // 3
        assert max(counts.values()) - min(counts.values()) <= 2
        assert scheduler.events["node_restart"] == 1

    def test_infeasible_events_are_skipped_not_applied(self):
        # restarting a node that never crashed is a no-op, loudly
        scheduler, _, _ = _scheduler(["restart:node=2,at=0.0"])
        scheduler.before_request(0, now=0.0)
        assert scheduler.skipped == 1
        assert scheduler.events["node_restart"] == 0

    def test_drain_applies_pending_stop_events_only(self):
        scheduler, _, network = _scheduler(
            ["degrade:node=0,factor=2,start=0.0,stop=0.9"])
        scheduler.before_request(0, now=0.0)  # start edge fires
        assert scheduler.events["link_degrade"] == 1
        # the run ends before index 90 — drain balances the window
        scheduler.drain(now=5_000.0)
        assert scheduler.events["link_restore"] == 1
        report = scheduler.report()
        assert report["events"]["link_degrade"] == 1
        assert report["events"]["link_restore"] == 1

    def test_storm_is_deterministic_per_seed(self):
        def run(seed):
            scheduler, topology, _ = _scheduler(
                ["storm:rate=0.3"], nodes=4, replicas=0, seed=seed)
            for index in range(100):
                scheduler.before_request(index, now=float(index * 50))
            return scheduler.report(), tuple(topology.assignment())

        report_a, assign_a = run(13)
        report_b, assign_b = run(13)
        assert report_a == report_b
        assert assign_a == assign_b
        assert report_a["storm_draws"] > 0
        report_c, _ = run(14)
        assert report_a != report_c  # the streams actually derive


# ----------------------------------------------------------------------
# end-to-end: the overlay under a fault plan
# ----------------------------------------------------------------------

PLAN = ("crash:node=1,at=0.4",)


class TestFailoverRuns:
    def test_same_seed_and_plan_is_bit_deterministic_per_policy(self):
        for policy in ("lazy", "eager"):
            config = _config(node_fault_plan=PLAN, repair_policy=policy)
            a = run_experiment(config)
            b = run_experiment(dataclasses.replace(config))
            assert a.cluster == b.cluster
            assert a.to_dict() == b.to_dict()

    def test_lazy_pays_redirects_eager_pays_pushes(self):
        """The repair-policy A/B's direction pin: after a promotion,
        lazy clients discover the new owner by MOVED; the eager
        broadcast already pushed it, so eager's post-promotion MOVED
        count is zero and strictly below lazy's."""
        lazy = run_experiment(
            _config(node_fault_plan=PLAN, repair_policy="lazy")).cluster
        eager = run_experiment(
            _config(node_fault_plan=PLAN, repair_policy="eager")).cluster
        assert lazy["failover"]["promotions"] >= 1
        assert eager["failover"]["promotions"] >= 1
        assert eager["failover"]["post_promotion_moved"] == 0
        assert lazy["failover"]["post_promotion_moved"] > 0
        assert eager["eager_repairs"] > 0
        assert lazy["eager_repairs"] == 0

    def test_acked_write_oracle_holds_with_a_replica(self):
        cluster = run_experiment(
            _config(node_fault_plan=PLAN)).cluster
        assert cluster["writes"] > 0
        assert cluster["acked_writes"] > 0
        assert cluster["failover_violations"] == 0
        assert cluster["acked_write_losses"] == 0
        assert cluster["failover"]["loss_window"] is None

    def test_replicaless_losses_are_telemetry_never_silent(self):
        """With no replica, a crash destroys acked data: the run
        completes (no exception), but the losses and their request
        window are reported loudly."""
        cluster = run_experiment(
            _config(replicas=0, node_fault_plan=PLAN)).cluster
        assert cluster["failover_violations"] == 0
        assert cluster["acked_write_losses"] > 0
        window = cluster["failover"]["loss_window"]
        assert window is not None and window[0] <= window[1]
        assert cluster["failover"]["loss_events"] > 0

    def test_resilient_client_times_out_and_survives(self):
        cluster = run_experiment(
            _config(node_fault_plan=PLAN)).cluster
        resilience = cluster["resilience"]
        assert resilience is not None
        assert resilience["timeouts"] > 0
        # failed requests still account in the merged histogram (the
        # run would have raised 'lost requests' otherwise) and the
        # fleet kept serving
        assert cluster["requests"] == \
            _config().effective_cluster_requests
        assert cluster["achieved_throughput"] > 0
        assert cluster["oracle_violations"] == 0

    def test_detection_window_scales_with_the_knob(self):
        fast = run_experiment(
            _config(node_fault_plan=PLAN,
                    failover_detect_cycles=200.0)).cluster
        slow = run_experiment(
            _config(node_fault_plan=PLAN,
                    failover_detect_cycles=50_000.0)).cluster
        assert fast["failover"]["promotions"] == 1
        # a huge detector timeout leaves the promotion pending at the
        # end of the run — the outage outlives the measurement
        assert slow["failover"]["promotions"] == 0
        assert slow["failover"]["pending_promotions"] == 1
        # more of the run is spent timing out against the corpse
        assert slow["resilience"]["timeouts"] >= \
            fast["resilience"]["timeouts"]

    def test_fault_plan_changes_the_label(self):
        config = _config(node_fault_plan=PLAN)
        assert "nfault1" in config.label
        eager = _config(node_fault_plan=PLAN, repair_policy="eager")
        assert "+eager" in eager.label
