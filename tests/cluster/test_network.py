"""Unit tests for the cluster network model (`repro.cluster.network`)."""

import math

import pytest

from repro.cluster.network import (
    DEFAULT_BYTES_PER_CYCLE,
    REQUEST_HEADER_BYTES,
    ClusterNetwork,
)
from repro.errors import ClusterError

RTT = 200.0


class TestQuietNetwork:
    def test_zero_rtt_transfers_are_free(self):
        net = ClusterNetwork(0.0)
        assert net.quiet
        assert net.one_way("a", "b", 10_000, at=42.0) == 42.0
        assert net.round_trip("a", "b", 64, 128, at=7.0) == 7.0
        # and untracked: the quiet network is the bit-identity anchor
        report = net.report()
        assert report["transfers"] == 0
        assert report["bytes_moved"] == 0

    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterNetwork(-1.0)
        with pytest.raises(ClusterError):
            ClusterNetwork(100.0, bytes_per_cycle=0.0)
        with pytest.raises(ClusterError):
            ClusterNetwork(100.0).one_way("a", "b", -1, 0.0)


class TestLatencyMath:
    def test_one_way_is_serialization_plus_half_rtt(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        delivery = net.one_way("a", "b", 80, at=0.0)
        assert delivery == pytest.approx(80 / 8.0 + RTT / 2.0)

    def test_follower_skips_propagation(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        delivery = net.one_way("a", "b", 80, at=0.0, propagate=False)
        assert delivery == pytest.approx(80 / 8.0)

    def test_round_trip_pays_both_directions(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        delivery = net.round_trip("a", "b", 64, 128, at=0.0)
        assert delivery == pytest.approx(64 / 8.0 + 128 / 8.0 + RTT)


class TestLinkContention:
    def test_same_link_transfers_serialise(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        first = net.one_way("a", "b", 800, at=0.0)   # busy [0, 100)
        second = net.one_way("a", "b", 800, at=0.0)  # queues behind it
        assert second == pytest.approx(first + 100.0)
        assert net.link_wait_cycles == pytest.approx(100.0)

    def test_directed_links_are_independent(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        forward = net.one_way("a", "b", 800, at=0.0)
        reverse = net.one_way("b", "a", 800, at=0.0)
        assert reverse == forward  # no shared queue
        assert net.link_wait_cycles == 0.0

    def test_interval_scheduling_keeps_the_timeline_causal(self):
        """A transfer reserved far in the future must not delay a
        later-*processed* transfer that departs earlier — the overlay
        reserves whole request trajectories in arrival order, so
        responses land on links long before earlier control messages
        are processed (the single free-at clock bug)."""
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        # a response reserved at t=10000 (processed first)
        late = net.one_way("n0", "c", 800, at=10_000.0)
        assert late == pytest.approx(10_100.0 + RTT / 2.0)
        # an early MOVED reply processed afterwards: fits in the gap
        early = net.one_way("n0", "c", 48, at=0.0)
        assert early == pytest.approx(48 / 8.0 + RTT / 2.0)
        assert net.link_wait_cycles == 0.0

    def test_gap_scheduling_fills_earliest_fit(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.one_way("a", "b", 80, at=0.0)     # busy [0, 10)
        net.one_way("a", "b", 80, at=50.0)    # busy [50, 60)
        # a 40-byte (5-cycle) transfer at t=2 fits the [10, 50) gap
        delivery = net.one_way("a", "b", 40, at=2.0)
        assert delivery == pytest.approx(10.0 + 5.0 + RTT / 2.0)
        # a 400-byte (50-cycle) transfer at t=2 must wait past both
        delivery = net.one_way("a", "b", 400, at=2.0)
        assert delivery == pytest.approx(60.0 + 50.0 + RTT / 2.0)


class TestTelemetry:
    def test_report_counts_transfers_and_bytes(self):
        net = ClusterNetwork(RTT)
        net.one_way("a", "b", REQUEST_HEADER_BYTES, at=0.0)
        net.one_way("b", "a", 128, at=5.0)
        report = net.report()
        assert report["transfers"] == 2
        assert report["bytes_moved"] == REQUEST_HEADER_BYTES + 128
        assert report["rtt_cycles"] == RTT
        assert report["bytes_per_cycle"] == DEFAULT_BYTES_PER_CYCLE

    def test_per_link_counters(self):
        """report()['links'] attributes reservations, bytes, and wait
        cycles to each directed link (PR 9 satellite)."""
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.one_way("a", "b", 800, at=0.0)   # busy [0, 100)
        net.one_way("a", "b", 800, at=0.0)   # waits 100 cycles
        net.one_way("b", "a", 160, at=0.0)
        links = net.report()["links"]
        assert links["a->b"]["reservations"] == 2
        assert links["a->b"]["bytes"] == 1600
        assert links["a->b"]["wait_cycles"] == pytest.approx(100.0)
        assert links["b->a"]["reservations"] == 1
        assert links["b->a"]["bytes"] == 160
        assert links["b->a"]["wait_cycles"] == 0.0
        for stats in links.values():
            assert stats["drops"] == 0
            assert stats["degraded"] == 0


class TestPartition:
    def test_partitioned_endpoint_drops_both_directions(self):
        net = ClusterNetwork(RTT)
        net.partition("n1")
        assert not net.reachable("c0", "n1")
        assert not net.reachable("n1", "c0")
        assert math.isinf(net.one_way("c0", "n1", 64, at=0.0))
        assert math.isinf(net.one_way("n1", "c0", 64, at=0.0))
        assert math.isinf(net.round_trip("c0", "n1", 64, 128, at=0.0))

    def test_drops_reserve_nothing_and_are_counted_per_link(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.partition("n1")
        net.one_way("c0", "n1", 800, at=0.0)
        report = net.report()
        assert report["drops"] == 1
        assert report["transfers"] == 0
        assert report["bytes_moved"] == 0
        assert report["links"]["c0->n1"]["drops"] == 1
        assert report["links"]["c0->n1"]["reservations"] == 0
        # the link's timeline is untouched: a post-heal transfer at the
        # same instant starts immediately
        net.heal("n1")
        assert net.reachable("c0", "n1")
        delivery = net.one_way("c0", "n1", 800, at=0.0)
        assert delivery == pytest.approx(100.0 + RTT / 2.0)

    def test_partition_drops_even_on_a_quiet_network(self):
        net = ClusterNetwork(0.0)
        net.partition("n0")
        assert math.isinf(net.one_way("c0", "n0", 64, at=0.0))
        assert net.report()["drops"] == 1

    def test_heal_is_idempotent(self):
        net = ClusterNetwork(RTT)
        net.heal("never-partitioned")
        assert net.reachable("a", "never-partitioned")


class TestDegrade:
    def test_latency_multiplier_stretches_propagation_only(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.degrade("n1", latency_mult=3.0)
        delivery = net.one_way("c0", "n1", 80, at=0.0)
        assert delivery == pytest.approx(80 / 8.0 + 3.0 * RTT / 2.0)

    def test_bandwidth_divisor_stretches_serialization_only(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.degrade("n1", bandwidth_div=4.0)
        delivery = net.one_way("c0", "n1", 80, at=0.0)
        assert delivery == pytest.approx(4.0 * 80 / 8.0 + RTT / 2.0)

    def test_worse_endpoint_wins_per_axis(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.degrade("a", latency_mult=2.0, bandwidth_div=1.0)
        net.degrade("b", latency_mult=1.0, bandwidth_div=4.0)
        delivery = net.one_way("a", "b", 80, at=0.0)
        assert delivery == pytest.approx(4.0 * 80 / 8.0 + 2.0 * RTT / 2.0)

    def test_degraded_transfers_are_counted_and_restorable(self):
        net = ClusterNetwork(RTT, bytes_per_cycle=8.0)
        net.degrade("n1", latency_mult=2.0)
        net.one_way("c0", "n1", 80, at=0.0)
        net.restore("n1")
        clean = net.one_way("c0", "n1", 80, at=500.0)
        assert clean == pytest.approx(500.0 + 80 / 8.0 + RTT / 2.0)
        report = net.report()
        assert report["degraded_transfers"] == 1
        assert report["links"]["c0->n1"]["degraded"] == 1
        assert report["links"]["c0->n1"]["reservations"] == 2

    def test_degrade_factors_below_one_are_rejected(self):
        net = ClusterNetwork(RTT)
        with pytest.raises(ClusterError):
            net.degrade("n1", latency_mult=0.5)
        with pytest.raises(ClusterError):
            net.degrade("n1", bandwidth_div=0.9)
