"""Heterogeneous-fleet tests: capability seam, dispatch, oracle (PR 10).

Three layers:

* topology with ``node_classes`` — backer spread, write authority,
  full-class replicas, weighted slot provisioning, crash promotion;
* Hypothesis properties over arbitrary fleets: no write path, durable
  copy, or crash heir ever lands on an accelerator, and dispatch
  eligibility is exactly the capability descriptor;
* end-to-end ``run_cluster`` — homogeneous runs bit-identical to the
  pre-hetero golden path, per-seed mixed-fleet determinism, zero
  capability-oracle violations, capacity/oversized/SET fallbacks, and
  an accelerator crash promoting cleanly.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.service import run_cluster
from repro.cluster.topology import ClusterTopology
from repro.errors import HeteroError
from repro.hetero.capability import OP_GET, OP_SET
from repro.hetero.fleet import NODE_CLASS_ACCEL, NODE_CLASS_FULL
from repro.sim.config import RunConfig

SLOTS = 128


def _config(**overrides):
    defaults = dict(
        program="unordered_map",
        frontend="stlt",
        num_keys=400,
        warmup_ops=160,
        measure_ops=80,
        num_cores=2,
        seed=13,
        nodes=3,
        replicas=1,
        net_rtt_cycles=50.0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


def _mixed(**overrides):
    overrides.setdefault("node_types", "2full+1accel")
    return _config(**overrides)


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------

class TestHeteroTopology:
    def test_class_list_length_must_match(self):
        with pytest.raises(HeteroError):
            ClusterTopology(3, num_slots=SLOTS,
                            node_classes=("full", "accel"))

    def test_fleet_needs_a_full_node(self):
        with pytest.raises(HeteroError):
            ClusterTopology(2, num_slots=SLOTS,
                            node_classes=("accel", "accel"))

    def test_replicas_need_enough_full_nodes(self):
        """Replicas are durable copies: only full nodes may hold them,
        so one full node cannot support one replica per slot."""
        with pytest.raises(HeteroError):
            ClusterTopology(3, replicas=1, num_slots=SLOTS,
                            node_classes=("full", "accel", "accel"))

    def test_homogeneous_stays_on_the_golden_layout(self):
        plain = ClusterTopology(3, num_slots=SLOTS)
        explicit = ClusterTopology(3, num_slots=SLOTS,
                                   node_classes=("full",) * 3)
        assert not explicit.hetero
        assert plain.assignment() == explicit.assignment()

    def test_accel_owns_a_weighted_share(self):
        """Provisioning follows capability: the accelerator's primary
        slot share exceeds a full node's."""
        topo = ClusterTopology(3, num_slots=SLOTS,
                               node_classes=("full", "full", "accel"))
        counts = topo.counts()
        assert counts[2] > counts[0]
        assert sum(counts.values()) == SLOTS

    def test_full_primary_backs_itself(self):
        topo = ClusterTopology(3, num_slots=SLOTS,
                               node_classes=("full", "full", "accel"))
        for slot in topo.slots_of(0):
            assert topo.backer_of(slot) == 0

    def test_accel_slots_spread_over_all_full_backers(self):
        topo = ClusterTopology(3, num_slots=SLOTS,
                               node_classes=("full", "full", "accel"))
        backers = {topo.backer_of(s) for s in topo.slots_of(2)}
        assert backers == {0, 1}

    def test_read_set_includes_the_backer(self):
        topo = ClusterTopology(3, num_slots=SLOTS,
                               node_classes=("full", "full", "accel"))
        for slot in topo.slots_of(2):
            read = topo.read_set(slot)
            assert slot in topo.slots_of(read[0])
            assert topo.backer_of(slot) in read

    def test_accel_crash_promotes_to_a_full_node(self):
        topo = ClusterTopology(3, num_slots=SLOTS,
                               node_classes=("full", "full", "accel"))
        orphans = topo.crash_node(2)
        assert orphans
        live = set(topo.node_ids)
        for slot in orphans:
            assert topo.owner(slot) in live
            assert not topo.is_accel(topo.owner(slot))

    def test_last_full_node_cannot_crash(self):
        topo = ClusterTopology(3, num_slots=SLOTS,
                               node_classes=("full", "accel", "accel"))
        with pytest.raises(HeteroError):
            topo.crash_node(0)


# ----------------------------------------------------------------------
# properties: nothing durable ever lands on an accelerator
# ----------------------------------------------------------------------

#: arbitrary fleets of 2-8 nodes with >= 2 full members (so one crash
#: always leaves a legal fleet)
FLEETS = st.lists(
    st.sampled_from([NODE_CLASS_FULL, NODE_CLASS_ACCEL]),
    min_size=2, max_size=8,
).filter(lambda classes: classes.count(NODE_CLASS_FULL) >= 2)


class TestCapabilityProperties:
    @settings(max_examples=60, deadline=None)
    @given(classes=FLEETS)
    def test_write_path_is_always_full_class(self, classes):
        """For every slot of every fleet: the write authority, every
        replica, and every durable copy is a full node — dispatch can
        never be forced to send an ineligible op to an accelerator."""
        replicas = 1 if classes.count(NODE_CLASS_FULL) >= 2 else 0
        topo = ClusterTopology(len(classes), replicas=replicas,
                               num_slots=SLOTS,
                               node_classes=tuple(classes))
        for slot in range(SLOTS):
            assert not topo.is_accel(topo.write_authority(slot))
            for node in topo.replicas_of(slot):
                assert not topo.is_accel(node)
            for node in topo.durable_set(slot):
                assert not topo.is_accel(node)

    @settings(max_examples=60, deadline=None)
    @given(classes=FLEETS, pick=st.integers(min_value=0, max_value=31))
    def test_crash_heirs_are_always_full_class(self, classes, pick):
        """Promotion makes the heir the slot's primary for SETs too, so
        an accelerator crash (or a full crash in a mixed fleet) never
        promotes onto an accelerator."""
        topo = ClusterTopology(len(classes), num_slots=SLOTS,
                               node_classes=tuple(classes))
        full = topo.full_nodes()
        victim = topo.node_ids[pick % topo.num_nodes]
        if topo.is_accel(victim) or len(full) >= 2:
            orphans = topo.crash_node(victim)
            for slot in orphans:
                assert not topo.is_accel(topo.owner(slot))

    @settings(max_examples=60, deadline=None)
    @given(classes=FLEETS, key_len=st.integers(min_value=1,
                                               max_value=1024))
    def test_eligibility_is_exactly_the_descriptor(self, classes,
                                                   key_len):
        """An accelerator's descriptor admits only small-key GETs; a
        full node's admits everything — there is no third answer for
        dispatch to disagree with."""
        topo = ClusterTopology(len(classes), num_slots=SLOTS,
                               node_classes=tuple(classes))
        for node in topo.node_ids:
            cap = topo.capability_of(node)
            if topo.is_accel(node):
                assert not cap.can_serve(OP_SET, key_len)
                assert cap.can_serve(OP_GET, key_len) == \
                    (key_len <= cap.max_key_bytes)
            else:
                assert cap.can_serve(OP_GET, key_len)
                assert cap.can_serve(OP_SET, key_len)

    @settings(max_examples=40, deadline=None)
    @given(classes=FLEETS)
    def test_backer_is_deterministic_and_full(self, classes):
        a = ClusterTopology(len(classes), num_slots=SLOTS,
                            node_classes=tuple(classes))
        b = ClusterTopology(len(classes), num_slots=SLOTS,
                            node_classes=tuple(classes))
        for slot in range(SLOTS):
            assert a.backer_of(slot) == b.backer_of(slot)
            assert not a.is_accel(a.backer_of(slot))


# ----------------------------------------------------------------------
# end-to-end dispatch
# ----------------------------------------------------------------------

class TestHeteroRuns:
    def test_homogeneous_spec_is_bit_identical_to_golden(self):
        """An all-full ``--node-types`` run must be indistinguishable
        from the same run without the flag: same label, same payload."""
        golden = run_cluster(_config())
        spec = run_cluster(_config(node_types="3full"))
        assert _config().label == _config(node_types="3full").label
        assert json.dumps(golden.cluster, sort_keys=True) == \
            json.dumps(spec.cluster, sort_keys=True)

    def test_mixed_fleet_is_deterministic_per_seed(self):
        a = run_cluster(_mixed(seed=7)).cluster
        b = run_cluster(_mixed(seed=7)).cluster
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)
        c = run_cluster(_mixed(seed=8)).cluster
        assert json.dumps(a, sort_keys=True) != \
            json.dumps(c, sort_keys=True)

    def test_accel_serves_hits_with_zero_violations(self):
        cluster = run_cluster(_mixed(measure_ops=200)).cluster
        hetero = cluster["hetero"]
        assert hetero["node_types"] == "2full+1accel"
        assert hetero["accel_hits"] > 0
        assert hetero["capability_violations"] == 0
        assert cluster["oracle_violations"] == 0

    def test_sets_always_fall_back_to_the_backer(self):
        """Every write whose slot an accelerator owns is rerouted; the
        accelerator itself serves none of them."""
        cluster = run_cluster(_mixed(measure_ops=200)).cluster
        hetero = cluster["hetero"]
        assert hetero["fallbacks"]["set"] > 0
        assert cluster["acked_writes"] > 0

    def test_capacity_misses_fall_back_and_install(self):
        """A tiny key memory forces capacity misses: the backer serves,
        the accelerator installs, evictions appear."""
        cluster = run_cluster(
            _mixed(measure_ops=200, hetero_accel_keys=16)).cluster
        hetero = cluster["hetero"]
        assert hetero["fallbacks"]["capacity"] > 0
        assert hetero["capability_violations"] == 0
        accel = hetero["per_accel"][0]
        assert accel["installs"] > 0
        assert accel["resident_keys"] <= 16

    def test_oversized_keys_never_reach_the_accel(self):
        cluster = run_cluster(
            _mixed(measure_ops=200, hetero_big_key_fraction=0.3)).cluster
        hetero = cluster["hetero"]
        assert hetero["fallbacks"]["oversized"] > 0
        assert hetero["capability_violations"] == 0

    def test_accel_crash_promotes_to_a_full_node(self):
        cluster = run_cluster(_mixed(
            measure_ops=200,
            node_fault_plan=("crash:node=2,at=0.4",),
            failover_detect_cycles=500.0,
        )).cluster
        assert cluster["failover"]["promotions"] > 0
        assert cluster["failover_violations"] == 0
        assert cluster["hetero"]["capability_violations"] == 0

    def test_cost_accounting_in_the_report(self):
        cluster = run_cluster(_mixed()).cluster
        hetero = cluster["hetero"]
        assert hetero["fleet_cost_units"] == pytest.approx(2.25)
        assert hetero["cost_normalized_throughput"] == pytest.approx(
            cluster["achieved_throughput"] / 2.25)

    def test_per_node_reports_carry_classes(self):
        cluster = run_cluster(_mixed()).cluster
        classes = [entry["node_class"] for entry in cluster["per_node"]]
        assert classes == ["full", "full", "accel"]

    def test_label_encodes_the_fleet(self):
        config = _mixed(hetero_big_key_fraction=0.25)
        label = config.label
        assert "2f1a" in label
        assert "bk0.25" in label

    def test_bad_spec_fails_at_config_time(self):
        with pytest.raises(HeteroError):
            _config(node_types="3accel")
        with pytest.raises(HeteroError):
            _config(node_types="2full+1turbo")
