"""Unit tests for hash-slot sharding (`repro.cluster.topology`)."""

import pytest

from repro.cluster.topology import NUM_SLOTS, ClusterTopology, slot_for_key
from repro.errors import ClusterError


class TestSlotForKey:
    def test_slot_is_in_range(self):
        for key_id in range(100):
            slot = slot_for_key(f"key-{key_id}".encode())
            assert 0 <= slot < NUM_SLOTS

    def test_slot_is_deterministic(self):
        assert slot_for_key(b"alpha") == slot_for_key(b"alpha")

    def test_slot_tracks_the_fast_hash(self):
        """Sharding reuses the registered fast-path hashes, so changing
        the hash function reshards (most of) the keyspace."""
        keys = [f"key-{i}".encode() for i in range(64)]
        xxh3 = [slot_for_key(k, "xxh3") for k in keys]
        xxh64 = [slot_for_key(k, "xxh64") for k in keys]
        assert xxh3 != xxh64


class TestConstruction:
    def test_initial_layout_is_balanced_contiguous_ranges(self):
        topo = ClusterTopology(4)
        counts = topo.counts()
        assert set(counts) == {0, 1, 2, 3}
        assert all(c == NUM_SLOTS // 4 for c in counts.values())
        # contiguous: node of slot s is monotone non-decreasing
        owners = topo.assignment()
        assert list(owners) == sorted(owners)

    def test_single_node_owns_everything(self):
        topo = ClusterTopology(1)
        assert topo.counts() == {0: NUM_SLOTS}

    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterTopology(0)
        with pytest.raises(ClusterError):
            ClusterTopology(2, replicas=2)  # needs 3 nodes
        with pytest.raises(ClusterError):
            ClusterTopology(4, num_slots=2)


class TestReplicas:
    def test_replicas_are_ring_successors(self):
        topo = ClusterTopology(4, replicas=2)
        slot = topo.slots_of(1)[0]
        assert topo.replicas_of(slot) == (2, 3)
        slot = topo.slots_of(3)[0]
        assert topo.replicas_of(slot) == (0, 1)  # ring wraps

    def test_read_set_is_primary_plus_replicas(self):
        topo = ClusterTopology(3, replicas=1)
        slot = topo.slots_of(0)[0]
        assert topo.read_set(slot) == (0, 1)

    def test_no_replicas_means_primary_only(self):
        topo = ClusterTopology(3)
        assert topo.replicas_of(0) == ()
        assert topo.read_set(0) == (topo.owner(0),)


class TestMembership:
    def test_add_node_steals_an_equal_share(self):
        topo = ClusterTopology(3)
        before = topo.assignment()
        new_id = topo.add_node()
        assert new_id == 3
        moved = [s for s, (a, b) in
                 enumerate(zip(before, topo.assignment())) if a != b]
        assert len(moved) == NUM_SLOTS // 4
        # every moved slot went to the joiner, none between survivors
        assert all(topo.owner(s) == new_id for s in moved)

    def test_remove_node_redistributes_only_its_slots(self):
        topo = ClusterTopology(4)
        victim_slots = set(topo.slots_of(2))
        before = topo.assignment()
        orphans = topo.remove_node(2)
        assert set(orphans) == victim_slots
        for slot, (a, b) in enumerate(zip(before, topo.assignment())):
            if slot in victim_slots:
                assert b != 2
            else:
                assert a == b  # survivors' slots untouched

    def test_remove_unknown_or_last_node_fails(self):
        topo = ClusterTopology(2)
        with pytest.raises(ClusterError):
            topo.remove_node(9)
        topo.remove_node(1)
        with pytest.raises(ClusterError):
            topo.remove_node(0)

    def test_remove_respects_replica_floor(self):
        topo = ClusterTopology(2, replicas=1)
        with pytest.raises(ClusterError):
            topo.remove_node(1)


class TestMoveSlot:
    def test_move_slot_commits_ownership(self):
        topo = ClusterTopology(2)
        slot = topo.slots_of(0)[0]
        prev = topo.move_slot(slot, 1)
        assert prev == 0
        assert topo.owner(slot) == 1

    def test_move_slot_validation(self):
        topo = ClusterTopology(2)
        with pytest.raises(ClusterError):
            topo.move_slot(-1, 0)
        with pytest.raises(ClusterError):
            topo.move_slot(0, 7)
