"""Unit tests for live slot migration (`repro.cluster.migration`)."""

from repro.cluster.migration import ASK_WINDOW_SCALE, MigrationScheduler
from repro.cluster.topology import ClusterTopology


def _scheduler(nodes=4, rate=0.2, seed=3, **kwargs):
    topo = ClusterTopology(nodes)
    return topo, MigrationScheduler(topo, rate, seed, **kwargs)


def _drive(sched, requests):
    for index in range(requests):
        sched.before_request(index)


class TestScheduling:
    def test_zero_rate_never_fires(self):
        topo, sched = _scheduler(rate=0.0)
        assert not sched.active
        before = topo.assignment()
        _drive(sched, 500)
        sched.drain(500)
        assert topo.assignment() == before
        assert sched.report() == {"started": 0, "committed": 0,
                                  "skipped": 0, "ask_redirects": 0,
                                  "in_flight": 0}

    def test_migrations_fire_and_commit_under_traffic(self):
        topo, sched = _scheduler(rate=0.1)
        before = topo.assignment()
        _drive(sched, 2_000)
        sched.drain(2_000)
        assert sched.started > 0
        assert sched.committed == sched.started
        assert len(sched._in_flight) == 0
        # committed moves actually changed ownership
        assert topo.assignment() != before

    def test_single_node_fleet_skips_every_event(self):
        topo, sched = _scheduler(nodes=1, rate=0.5)
        _drive(sched, 500)
        assert sched.started == 0
        assert sched.skipped > 0
        assert topo.assignment() == tuple([0] * topo.num_slots)

    def test_window_commits_after_its_burst(self):
        topo, sched = _scheduler(rate=1.0)  # fires on request 0
        sched.before_request(0)
        assert sched.started == 1
        (slot, (dst, end)), = list(sched._in_flight.items())
        assert end <= ASK_WINDOW_SCALE * 8  # bursts are 1..8
        old_owner = topo.owner(slot)
        assert dst != old_owner
        # drive past the window: the commit lands
        for index in range(1, end + 1):
            sched.before_request(index)
            if slot not in sched._in_flight:
                break
        assert topo.owner(slot) == dst
        assert sched.committed >= 1


class TestAskRedirects:
    def test_ask_targets_the_importer_only_from_the_old_owner(self):
        topo, sched = _scheduler(rate=1.0)
        sched.before_request(0)
        (slot, (dst, _)), = list(sched._in_flight.items())
        owner = topo.owner(slot)
        # from the (still authoritative) old owner: forward to importer
        assert sched.ask_target(slot, owner) == dst
        assert sched.ask_redirects == 1
        # from any other node: no ASK (that path answers MOVED instead)
        other = next(n for n in topo.node_ids if n not in (owner, dst))
        assert sched.ask_target(slot, other) is None
        # a slot not migrating never ASKs
        quiet_slot = next(s for s in range(topo.num_slots)
                          if s not in sched._in_flight)
        assert sched.ask_target(quiet_slot, topo.owner(quiet_slot)) is None

    def test_importing_node_is_exposed_for_the_oracle(self):
        topo, sched = _scheduler(rate=1.0)
        sched.before_request(0)
        (slot, (dst, _)), = list(sched._in_flight.items())
        assert sched.importing_node(slot) == dst
        assert sched.importing_node((slot + 1) % topo.num_slots) is None


class TestDeterminism:
    def test_same_seed_same_migration_history(self):
        topo_a, a = _scheduler(seed=5)
        topo_b, b = _scheduler(seed=5)
        _drive(a, 1_000)
        _drive(b, 1_000)
        a.drain(1_000)
        b.drain(1_000)
        assert a.report() == b.report()
        assert topo_a.assignment() == topo_b.assignment()

    def test_slot_source_controls_payloads_not_positions(self):
        """Changing *which* slots migrate must not shift *when* events
        fire — the position/payload stream split."""
        _, a = _scheduler(seed=5)
        _, b = _scheduler(seed=5,
                          slot_source=lambda rng: rng.randrange(64))
        _drive(a, 1_000)
        _drive(b, 1_000)
        assert a.started + a.skipped == b.started + b.skipped
