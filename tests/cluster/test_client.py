"""Unit tests for cluster clients (`repro.cluster.client`)."""

import pytest

from repro.cluster.client import ClusterClient, RouteCache
from repro.cluster.topology import ClusterTopology
from repro.errors import ClusterError


def _client(**kwargs):
    defaults = dict(client_id=0, num_nodes=4, seed=7)
    defaults.update(kwargs)
    return ClusterClient(**defaults)


class TestRouteCache:
    def test_learn_lookup_invalidate(self):
        cache = RouteCache()
        assert cache.lookup(5) is None
        cache.learn(5, 2)
        assert cache.lookup(5) == 2
        assert len(cache) == 1
        cache.invalidate(5)
        assert cache.lookup(5) is None
        cache.invalidate(5)  # idempotent

    def test_report_carries_counters(self):
        cache = RouteCache()
        cache.hits, cache.stale_hits, cache.misses = 3, 1, 2
        cache.learn(0, 0)
        assert cache.report() == {"hits": 3, "stale_hits": 1,
                                  "misses": 2, "entries": 1}


class TestRouting:
    def test_cold_lookup_is_a_miss_to_a_bootstrap_node(self):
        topo = ClusterTopology(4)
        client = _client()
        node, kind = client.target_for(0, topo, is_read=True)
        assert kind == "miss"
        assert 0 <= node < 4
        assert client.cache.misses == 1

    def test_served_route_hits_on_the_next_touch(self):
        topo = ClusterTopology(4)
        client = _client()
        slot = topo.slots_of(2)[0]
        client.on_served(slot, 2)
        node, kind = client.target_for(slot, topo, is_read=True)
        assert (node, kind) == (2, "hit")
        assert client.cache.hits == 1

    def test_committed_move_makes_the_route_stale(self):
        topo = ClusterTopology(4)
        client = _client()
        slot = topo.slots_of(0)[0]
        client.on_served(slot, 0)
        topo.move_slot(slot, 3)
        node, kind = client.target_for(slot, topo, is_read=True)
        # the stale row is *followed* (the contacted node will MOVED)
        assert (node, kind) == (0, "stale")
        client.on_moved(slot, 3)
        node, kind = client.target_for(slot, topo, is_read=True)
        assert (node, kind) == (3, "hit")

    def test_cacheless_client_always_bootstraps(self):
        topo = ClusterTopology(4)
        client = _client(route_cache=False)
        assert client.cache is None
        for _ in range(8):
            node, kind = client.target_for(0, topo, is_read=True)
            assert kind == "miss"
        client.on_served(0, topo.owner(0))  # a no-op without a cache
        _, kind = client.target_for(0, topo, is_read=True)
        assert kind == "miss"

    def test_replica_reads_rotate_over_the_read_set(self):
        topo = ClusterTopology(4, replicas=2)
        client = _client(replica_reads=True)
        slot = topo.slots_of(0)[0]
        client.on_served(slot, 0)
        seen = {client.target_for(slot, topo, is_read=True)[0]
                for _ in range(64)}
        assert seen == set(topo.read_set(slot))

    def test_cached_replica_still_counts_as_a_hit(self):
        topo = ClusterTopology(3, replicas=1)
        client = _client(num_nodes=3)
        slot = topo.slots_of(0)[0]
        replica = topo.replicas_of(slot)[0]
        client.on_served(slot, replica)
        _, kind = client.target_for(slot, topo, is_read=True)
        assert kind == "hit"


class TestPipelining:
    def test_batch_head_and_followers(self):
        client = _client(batch=3)
        assert client.begin_request(1) is True    # head
        assert client.begin_request(1) is False   # follower
        assert client.begin_request(1) is False   # follower
        assert client.begin_request(1) is True    # new window

    def test_node_change_restarts_the_window(self):
        client = _client(batch=4)
        assert client.begin_request(1) is True
        assert client.begin_request(2) is True  # different node
        assert client.begin_request(2) is False

    def test_unbatched_requests_always_pay_propagation(self):
        client = _client(batch=1)
        assert all(client.begin_request(0) for _ in range(5))

    def test_validation(self):
        with pytest.raises(ClusterError):
            _client(batch=0)
        with pytest.raises(ClusterError):
            _client(num_nodes=0)


class TestDeterminism:
    def test_same_seed_same_bootstrap_stream(self):
        a = _client(seed=11)
        b = _client(seed=11)
        assert [a.bootstrap_node() for _ in range(32)] == \
            [b.bootstrap_node() for _ in range(32)]

    def test_different_seed_different_stream(self):
        a = _client(seed=11)
        b = _client(seed=12)
        assert [a.bootstrap_node() for _ in range(32)] != \
            [b.bootstrap_node() for _ in range(32)]
