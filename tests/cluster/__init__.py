"""Tests for the sharded cluster model (``repro.cluster``)."""
