"""Integration tests for the cluster overlay (`repro.cluster.service`)."""

import dataclasses
import json

import pytest

from repro.cluster.service import ClusterResult, run_cluster, simulate_cluster
from repro.errors import ClusterError, ReproError
from repro.sim.config import RunConfig
from repro.sim.engine import Engine, run_experiment


def _config(**overrides):
    defaults = dict(
        program="unordered_map",
        frontend="stlt",
        num_keys=400,
        warmup_ops=160,
        measure_ops=80,
        num_cores=2,
        seed=13,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestBitIdentityAnchor:
    def test_quiet_single_node_stays_on_the_plain_path(self):
        """nodes=1 + zero RTT must be bit-identical to the golden
        single-node path — no overlay, no cluster payload."""
        config = _config()
        assert not config.cluster_enabled
        plain = Engine(dataclasses.replace(config)).run()
        routed = run_experiment(config)
        assert routed.cluster is None
        assert routed.to_dict() == plain.to_dict()

    def test_one_node_rtt_anchor_goes_through_the_overlay(self):
        config = _config(net_rtt_cycles=300.0)
        assert config.cluster_enabled
        result = run_experiment(config)
        assert result.cluster is not None
        cluster = result.cluster
        assert cluster["nodes"] == 1
        assert cluster["network"]["rtt_cycles"] == 300.0
        assert cluster["oracle_violations"] == 0
        # the node itself ran the plain engine: same closed-loop
        # throughput as a quiet run of the same seed
        plain = Engine(_config()).run()
        assert cluster["per_node"][0]["closed_loop_throughput"] == \
            pytest.approx(plain.throughput)
        # the run-level label says "cluster anchor"
        assert "net300" in result.label


class TestFleetRuns:
    def test_three_node_fleet_serves_everything_coherently(self):
        config = _config(nodes=3)
        result = run_experiment(config)
        cluster = result.cluster
        assert cluster["nodes"] == 3
        assert cluster["requests"] == config.effective_cluster_requests
        assert cluster["oracle_violations"] == 0
        assert cluster["achieved_throughput"] > 0
        assert sum(n["requests"] for n in cluster["per_node"]) == \
            cluster["requests"]
        assert 0.0 < cluster["fairness"] <= 1.0

    def test_fleet_is_deterministic_per_seed(self):
        config = _config(nodes=2, net_rtt_cycles=100.0,
                         migrate_rate=0.02, replicas=1)
        a = run_experiment(config)
        b = run_experiment(dataclasses.replace(config))
        assert a.to_dict() == b.to_dict()

    def test_seed_change_perturbs_the_overlay(self):
        a = run_experiment(_config(nodes=2, seed=13))
        b = run_experiment(_config(nodes=2, seed=14))
        assert a.cluster["histogram"] != b.cluster["histogram"]

    def test_route_cache_off_forces_bootstrap_misses(self):
        config = _config(nodes=4, route_cache=False)
        cluster = run_experiment(config).cluster
        assert cluster["route_hits"] == 0
        assert cluster["route_stale_hits"] == 0
        assert cluster["route_misses"] == cluster["requests"]
        # bootstrap nodes are arbitrary: most requests bounce
        assert cluster["moved_redirects"] > 0
        assert cluster["oracle_violations"] == 0

    def test_route_cache_on_learns_the_hot_set(self):
        # long enough that warmed caches dominate the cold misses
        config = _config(nodes=4, distribution="zipf",
                         measure_ops=250, cluster_clients=4)
        cluster = run_experiment(config).cluster
        assert cluster["route_hits"] > cluster["route_misses"]

    def test_migration_exercises_ask_and_stale_paths(self):
        config = _config(nodes=4, migrate_rate=0.05, replicas=1,
                         measure_ops=150, seed=2)
        cluster = run_experiment(config).cluster
        assert cluster["migration"]["committed"] > 0
        assert cluster["ask_redirects"] > 0
        assert cluster["oracle_violations"] == 0

    def test_network_telemetry_flows_through(self):
        config = _config(nodes=2, net_rtt_cycles=150.0)
        cluster = run_experiment(config).cluster
        assert cluster["network"]["transfers"] > 0
        assert cluster["network"]["bytes_moved"] > 0


class TestSimulateClusterValidation:
    def test_capacity_and_capture_counts_must_match_nodes(self):
        config = _config(nodes=2)
        with pytest.raises(ClusterError):
            simulate_cluster(config, [0.01], [[[100]]])

    def test_empty_capture_is_rejected(self):
        config = _config(nodes=1, net_rtt_cycles=1.0)
        with pytest.raises(ClusterError):
            simulate_cluster(config, [0.01], [[[]]])

    def test_zero_capacity_is_rejected(self):
        config = _config(nodes=1, net_rtt_cycles=1.0)
        with pytest.raises(ClusterError):
            simulate_cluster(config, [0.0], [[[100]]])


class TestClusterResultRoundTrip:
    def test_json_exact_round_trip(self):
        config = _config(nodes=2, migrate_rate=0.02, replicas=1)
        cluster = run_experiment(config).cluster
        hydrated = ClusterResult.from_dict(
            json.loads(json.dumps(cluster)))
        assert hydrated.to_dict() == cluster
        assert hydrated.p99 == cluster["latency"]["p99"]
        assert hydrated.route_lookups == (
            cluster["route_hits"] + cluster["route_stale_hits"]
            + cluster["route_misses"])
        assert 0.0 <= hydrated.route_hit_rate <= 1.0
        assert hydrated.latency_histogram().count == cluster["requests"]

    def test_unknown_fields_are_rejected_loudly(self):
        with pytest.raises(ReproError):
            ClusterResult.from_dict({"definitely_not_a_field": 1})


class TestStoreIntegration:
    def test_cluster_payload_survives_the_result_store_record(self):
        from repro.exp.store import make_record
        from repro.sim.results import RunResult

        config = _config(nodes=2)
        result = run_experiment(config)
        record = json.loads(json.dumps(make_record(config, result)))
        rehydrated = RunResult.from_dict(record["result"])
        assert rehydrated.cluster == result.cluster
        assert record["config"]["nodes"] == 2
