"""Property tests for minimal-remap sharding (ISSUE 5 satellite).

Two invariants over *arbitrary* membership sequences:

* **balance** — after any sequence of joins/leaves, primary slot
  counts across live nodes differ by at most the rounding slack the
  one-slot-at-a-time greedy can leave behind;
* **minimal remap** — a join moves exactly ``num_slots // new_count``
  slots, all to the joiner; a leave moves exactly the leaver's slots
  and touches no other assignment.

A small slot count keeps Hypothesis fast; the invariants are
independent of the slot-table size.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology

#: small table for speed — the greedy never consults the constant
SLOTS = 128


def _apply(topo, ops):
    """Replay a membership script; skips illegal leaves."""
    for op in ops:
        if op is None:
            topo.add_node()
        elif topo.num_nodes > 1:
            victims = topo.node_ids
            topo.remove_node(victims[op % len(victims)])


#: None = join; an int = leave (index into the live node list)
MEMBERSHIP = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=31)),
    max_size=12)


class TestBalanceInvariant:
    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8), ops=MEMBERSHIP)
    def test_counts_stay_balanced(self, nodes, ops):
        topo = ClusterTopology(nodes, num_slots=SLOTS)
        _apply(topo, ops)
        counts = topo.counts()
        assert sum(counts.values()) == SLOTS  # no slot lost or doubled
        # the one-at-a-time greedy keeps live nodes within one slot of
        # each other — the +/-1 balance bound
        assert max(counts.values()) - min(counts.values()) <= 1

    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8), ops=MEMBERSHIP)
    def test_every_slot_has_a_live_owner(self, nodes, ops):
        topo = ClusterTopology(nodes, num_slots=SLOTS)
        _apply(topo, ops)
        live = set(topo.node_ids)
        assert all(owner in live for owner in topo.assignment())


class TestMinimalRemapInvariant:
    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8), ops=MEMBERSHIP)
    def test_join_moves_exactly_one_share_all_to_the_joiner(
            self, nodes, ops):
        topo = ClusterTopology(nodes, num_slots=SLOTS)
        _apply(topo, ops)
        before = topo.assignment()
        joiner = topo.add_node()
        after = topo.assignment()
        moved = [s for s, (a, b) in enumerate(zip(before, after))
                 if a != b]
        assert len(moved) == SLOTS // topo.num_nodes
        assert all(after[s] == joiner for s in moved)

    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=2, max_value=8), ops=MEMBERSHIP,
           pick=st.integers(min_value=0, max_value=31))
    def test_leave_moves_exactly_the_leavers_slots(self, nodes, ops,
                                                   pick):
        topo = ClusterTopology(nodes, num_slots=SLOTS)
        _apply(topo, ops)
        if topo.num_nodes < 2:
            topo.add_node()
        leaver = topo.node_ids[pick % topo.num_nodes]
        leaver_slots = set(topo.slots_of(leaver))
        before = topo.assignment()
        orphans = topo.remove_node(leaver)
        after = topo.assignment()
        assert set(orphans) == leaver_slots
        for slot in range(SLOTS):
            if slot in leaver_slots:
                assert after[slot] != leaver
            else:
                assert after[slot] == before[slot]


class TestDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8), ops=MEMBERSHIP)
    def test_topology_is_a_pure_function_of_its_script(self, nodes, ops):
        a = ClusterTopology(nodes, num_slots=SLOTS)
        b = ClusterTopology(nodes, num_slots=SLOTS)
        _apply(a, ops)
        _apply(b, ops)
        assert a.assignment() == b.assignment()
        assert a.node_ids == b.node_ids


# ----------------------------------------------------------------------
# failures: crash / restart interleaved with membership (PR 9 satellite)
# ----------------------------------------------------------------------

def _apply_faults(topo, ops):
    """Replay a script mixing joins, leaves, crashes, and restarts;
    skips operations that are illegal in the current state (exactly
    what a driver would refuse to schedule)."""
    for op in ops:
        if op is None:
            topo.add_node()
        elif isinstance(op, int):
            if (topo.num_nodes > 1
                    and topo.replicas < topo.num_nodes - 1):
                topo.remove_node(topo.node_ids[op % topo.num_nodes])
        else:
            kind, pick = op
            if kind == "crash":
                if topo.num_nodes > 1:
                    topo.crash_node(topo.node_ids[pick % topo.num_nodes])
            elif topo.down_nodes:
                down = sorted(topo.down_nodes)
                topo.restart_node(down[pick % len(down)])


#: None = join; int = leave; ("crash"|"restart", pick) = failure event
FAULT_SCRIPT = st.lists(
    st.one_of(
        st.none(),
        st.integers(min_value=0, max_value=31),
        st.tuples(st.sampled_from(["crash", "restart"]),
                  st.integers(min_value=0, max_value=31)),
    ),
    max_size=14)


class TestFailureInvariants:
    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8), ops=FAULT_SCRIPT)
    def test_crash_restart_preserve_balance_without_replicas(
            self, nodes, ops):
        """Replica-less crashes redistribute like leaves: the +/-1
        balance bound survives arbitrary interleavings."""
        topo = ClusterTopology(nodes, num_slots=SLOTS)
        _apply_faults(topo, ops)
        counts = topo.counts()
        assert sum(counts.values()) == SLOTS
        assert max(counts.values()) - min(counts.values()) <= 1

    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=2, max_value=8), ops=FAULT_SCRIPT,
           replicas=st.integers(min_value=0, max_value=1))
    def test_no_slot_is_ever_owned_by_a_dead_node(self, nodes, ops,
                                                  replicas):
        """While at least one node lives, every slot has a live
        authoritative owner — never a crashed one, never zero."""
        topo = ClusterTopology(nodes, replicas=replicas, num_slots=SLOTS)
        _apply_faults(topo, ops)
        assert topo.num_nodes >= 1
        live = set(topo.node_ids)
        assert live.isdisjoint(topo.down_nodes)
        assert all(owner in live for owner in topo.assignment())

    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=3, max_value=8), ops=MEMBERSHIP,
           pick=st.integers(min_value=0, max_value=31))
    def test_promotion_lands_on_the_pre_crash_replica(self, nodes, ops,
                                                      pick):
        """With one replica configured, every slot orphaned by a crash
        is promoted onto exactly its pre-crash ring successor —
        ownership follows the data."""
        topo = ClusterTopology(nodes, replicas=1, num_slots=SLOTS)
        _apply_faults(topo, ops)  # joins/leaves only; guard keeps >= 2
        victim = topo.node_ids[pick % topo.num_nodes]
        successor_of = {slot: topo.replicas_of(slot)[0]
                        for slot in topo.slots_of(victim)}
        epochs_before = {slot: topo.epoch(slot) for slot in successor_of}
        orphans = topo.crash_node(victim)
        assert set(orphans) == set(successor_of)
        for slot, successor in successor_of.items():
            assert topo.owner(slot) == successor
            assert topo.epoch(slot) == epochs_before[slot] + 1

    @settings(max_examples=60, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8), ops=FAULT_SCRIPT)
    def test_fault_script_is_deterministic(self, nodes, ops):
        a = ClusterTopology(nodes, num_slots=SLOTS)
        b = ClusterTopology(nodes, num_slots=SLOTS)
        _apply_faults(a, ops)
        _apply_faults(b, ops)
        assert a.assignment() == b.assignment()
        assert a.node_ids == b.node_ids
        assert a.down_nodes == b.down_nodes
        assert a.slot_epoch == b.slot_epoch
