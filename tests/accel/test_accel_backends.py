"""The translation-accel framework: golden identity, rivals, churn.

The contract (DESIGN.md section 12):

* ``accel=stlt`` is the pre-refactor ``frontend="stlt"`` machinery
  behind the :class:`~repro.accel.base.TranslationAccel` interface —
  pinned *bit-identical* to ``tests/data/golden_smoke.json`` in both
  reference and batched execution modes, as is ``accel=none`` with the
  baseline frontend;
* every rival backend (victima / pcax / revelator) is deterministic
  across execution modes and **oracle-clean under OS churn**: a stale
  translation is charged as a misspeculation or invalidated, never
  served;
* the config axis is validated, labelled, content-hashed, and carries
  a per-backend hardware-cost report.
"""

import dataclasses
import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.accel import ACCEL_BACKENDS, make_accel
from repro.core.hwcost import accel_hardware_cost
from repro.errors import ConfigError
from repro.sim.config import ACCELS, RunConfig, config_hash
from repro.sim.engine import Engine, run_experiment

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / \
    "golden_smoke.json"
SMOKE = dict(num_keys=200, measure_ops=60, warmup_ops=120)
RIVALS = ("victima", "pcax", "revelator")
#: footprint past L2-TLB reach so every backend sees measured-window
#: STLB misses (at SMOKE scale the rivals are warmup-only)
BIG = dict(num_keys=20_000, measure_ops=600, warmup_ops=1_200)


def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenBitIdentity:
    """The refactor seam: accel=stlt / accel=none vs. the golden run."""

    @pytest.mark.parametrize("exec_mode", ["reference", "batched"])
    @pytest.mark.parametrize("program", ["unordered_map", "btree"])
    def test_accel_stlt_matches_golden_stlt(self, program, exec_mode):
        config = RunConfig(program=program, frontend="baseline",
                           accel="stlt", exec_mode=exec_mode, **SMOKE)
        result = run_experiment(config)
        want = golden()[f"{program}/stlt"]
        assert result.cycles == want["cycles"]
        assert result.ops == want["ops"]
        assert result.gets == want["gets"]
        assert result.sets == want["sets"]
        assert result.attr == want["attr"]
        assert result.fast_miss_rate == want["fast_miss_rate"]
        mem = asdict(result.mem)
        for counter, value in want["mem"].items():
            assert mem[counter] == value, (
                f"{program}: accel=stlt drifted on {counter}")

    @pytest.mark.parametrize("exec_mode", ["reference", "batched"])
    @pytest.mark.parametrize("program", ["unordered_map", "btree"])
    def test_accel_none_matches_golden_baseline(self, program, exec_mode):
        config = RunConfig(program=program, frontend="baseline",
                           accel="none", exec_mode=exec_mode, **SMOKE)
        result = run_experiment(config)
        want = golden()[f"{program}/baseline"]
        assert result.cycles == want["cycles"]
        assert result.fast_miss_rate == want["fast_miss_rate"]
        mem = asdict(result.mem)
        for counter, value in want["mem"].items():
            assert mem[counter] == value, (
                f"{program}: accel=none drifted on {counter}")

    def test_accel_stlt_carries_stlt_telemetry(self):
        config = RunConfig(frontend="baseline", accel="stlt", **SMOKE)
        result = run_experiment(config)
        assert result.accel is not None
        assert result.accel["accel"] == "stlt"
        assert result.accel["stlt_rows"] > 0
        assert result.accel["stb_probes"] > 0


class TestRivalBackends:
    """victima / pcax / revelator under the same memory system."""

    @pytest.mark.parametrize("accel", RIVALS)
    def test_reference_and_batched_are_identical(self, accel):
        config = RunConfig(program="redis", frontend="baseline",
                           accel=accel, **BIG)
        ref = run_experiment(
            dataclasses.replace(config, exec_mode="reference"))
        bat = run_experiment(
            dataclasses.replace(config, exec_mode="batched"))
        assert bat.to_dict() == ref.to_dict()
        assert bat.accel == ref.accel

    @pytest.mark.parametrize("accel", RIVALS)
    def test_untimed_counts_match_reference(self, accel):
        config = RunConfig(program="redis", frontend="baseline",
                           accel=accel, **BIG)
        ref = run_experiment(
            dataclasses.replace(config, exec_mode="reference"))
        unt = run_experiment(
            dataclasses.replace(config, exec_mode="untimed"))
        assert unt.accel == ref.accel
        assert asdict(unt.mem)["page_walks"] == \
            asdict(ref.mem)["page_walks"]
        assert unt.cycles == 0

    @pytest.mark.parametrize("accel", RIVALS)
    def test_backend_is_exercised_past_tlb_reach(self, accel):
        config = RunConfig(program="redis", frontend="baseline",
                           accel=accel, **BIG)
        result = run_experiment(config)
        telemetry = result.accel
        assert telemetry is not None and telemetry["accel"] == accel
        if accel == "revelator":
            assert telemetry["spec_hits"] > 0
        else:
            assert telemetry["hits"] > 0
        # rivals never populate the key-level fast path
        assert result.fast_miss_rate is None

    def test_victima_and_pcax_reduce_walks(self):
        base = RunConfig(program="redis", frontend="baseline",
                         accel="none", **BIG)
        walks = run_experiment(base).page_walks
        assert walks > 0
        for accel in ("victima", "pcax"):
            accelerated = run_experiment(
                dataclasses.replace(base, accel=accel))
            assert accelerated.page_walks < walks, accel

    def test_revelator_walks_functionally_but_hides_latency(self):
        base = RunConfig(program="redis", frontend="baseline",
                         accel="none", **BIG)
        none_result = run_experiment(base)
        rev = run_experiment(
            dataclasses.replace(base, accel="revelator"))
        # every walk still happens (validation requires the real PTE)
        assert rev.page_walks == none_result.page_walks
        # but correct speculation hides the walk latency
        assert rev.cycles < none_result.cycles


class TestChurnOracle:
    """OS churn against every backend: stale translations must be
    charged or invalidated, never served — zero oracle violations."""

    CHURN = dict(program="redis", frontend="baseline", churn_rate=0.05,
                 num_keys=2_000, measure_ops=600, warmup_ops=1_200)

    @pytest.mark.parametrize("accel", ["none", "stlt", "victima",
                                       "pcax", "revelator"])
    def test_zero_violations_under_churn(self, accel):
        config = RunConfig(accel=accel, **self.CHURN)
        result = run_experiment(config)
        chaos = result.chaos
        assert chaos is not None
        assert chaos["oracle"]["violations"] == 0, accel
        assert chaos["oracle"]["checks"] > 0

    def test_revelator_misspeculates_under_churn_yet_stays_clean(self):
        config = RunConfig(accel="revelator",
                           **{**self.CHURN, "num_keys": 20_000})
        result = run_experiment(config)
        telemetry = result.accel
        # churn moved pages under live guesses: the stale guesses were
        # *detected and charged*, not served
        assert telemetry["spec_misses"] > 0
        assert result.chaos["oracle"]["violations"] == 0


class TestConfigAxis:
    """Validation, labelling, hashing, registry, hardware cost."""

    def test_accels_tuple_matches_registry(self):
        assert set(ACCELS) == {"none"} | set(ACCEL_BACKENDS)

    def test_non_baseline_frontend_rejected(self):
        for frontend in ("stlt", "slb"):
            with pytest.raises(ConfigError):
                RunConfig(frontend=frontend, accel="victima", **SMOKE)

    def test_unknown_accel_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(accel="tlbboost", **SMOKE)

    def test_unknown_accel_rejected_by_factory(self):
        engine = Engine(RunConfig(frontend="baseline", **SMOKE))
        with pytest.raises(ConfigError):
            make_accel("tlbboost", engine)

    def test_label_names_the_accel(self):
        config = RunConfig(frontend="baseline", accel="pcax", **SMOKE)
        assert "accel-pcax" in config.label
        plain = RunConfig(frontend="baseline", **SMOKE)
        assert "accel" not in plain.label

    def test_accel_knobs_reach_the_hash(self):
        base = RunConfig(frontend="baseline", accel="victima", **SMOKE)
        assert config_hash(dataclasses.replace(base, accel_ways=8)) != \
            config_hash(base)
        assert config_hash(dataclasses.replace(base, accel="pcax")) != \
            config_hash(base)

    def test_knob_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(accel="victima", accel_ways=0, **SMOKE)
        with pytest.raises(ConfigError):
            RunConfig(accel="revelator", spec_mispredict_cycles=-1,
                      **SMOKE)

    @pytest.mark.parametrize("accel", ["stlt", "victima", "pcax",
                                       "revelator"])
    def test_every_backend_reports_hardware_cost(self, accel):
        report = accel_hardware_cost(accel)
        assert report.total_bytes > 0
        assert any(component == "Total" for component, _ in report.rows())

    def test_backend_instances_report_cost_too(self):
        config = RunConfig(frontend="baseline", accel="victima", **SMOKE)
        engine = Engine(config)
        assert engine.accel is not None
        assert engine.accel.hardware_cost().total_bytes > 0
