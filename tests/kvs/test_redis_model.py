"""Redis server model tests."""

import pytest

from repro.errors import KVSError
from repro.kvs.base import SimContext
from repro.kvs.redis_model import RedisModel
from repro.workloads.keys import key_bytes


@pytest.fixture
def redis(redis_ctx):
    return RedisModel(redis_ctx, expected_keys=256)


class TestConstruction:
    def test_requires_siphash(self, ctx):
        # ctx uses murmur; Redis's dict is keyed by SipHash
        with pytest.raises(KVSError):
            RedisModel(ctx, expected_keys=16)

    def test_dict_does_not_cache_hashes(self, redis):
        assert redis.index.cache_node_hash is False


class TestCommands:
    def test_populate_and_lookup(self, redis):
        rec = redis.populate(key_bytes(1), 64)
        assert redis.lookup(key_bytes(1)) is rec

    def test_values_are_external_allocations(self, redis):
        rec = redis.populate(key_bytes(2), 64)
        assert rec.external_value_va is not None

    def test_begin_command_charges_overhead(self, redis, redis_ctx):
        before = redis_ctx.mem.now
        redis.begin_command()
        assert redis_ctx.mem.now > before
        assert redis_ctx.mem.attr.get("command", 0) > 0

    def test_end_command_writes_reply(self, redis, redis_ctx):
        before = redis_ctx.mem.stats.writes
        redis.end_command(64)
        assert redis_ctx.mem.stats.writes == before + 1

    def test_insert_new_is_timed(self, redis, redis_ctx):
        before = redis_ctx.mem.stats.accesses
        rec = redis.insert_new(key_bytes(3), 64)
        assert redis_ctx.mem.stats.accesses > before
        assert redis.lookup(key_bytes(3)) is rec
        assert redis.sets == 1

    def test_set_existing_overwrites_in_place(self, redis, redis_ctx):
        rec = redis.populate(key_bytes(4), 64)
        before = redis_ctx.mem.stats.writes
        redis.set_existing(rec)
        assert redis_ctx.mem.stats.writes > before

    def test_query_buffer_stays_hot(self, redis, redis_ctx):
        # the command cursor wraps around an 8 KiB window: once warm,
        # framing traffic hits the caches rather than generating
        # unbounded unique lines
        for _ in range(200):  # warm one full wrap of the window
            redis.begin_command()
            redis.end_command(64)
        snap = redis_ctx.mem.stats.snapshot()
        for _ in range(200):
            redis.begin_command()
            redis.end_command(64)
        delta = redis_ctx.mem.stats.delta(snap)
        assert delta.l1_misses == 0
