"""Structure-specific and invariant tests for the tree indexes."""

import random

from repro.kvs.btree import MAX_KEYS, MIN_KEYS, BTreeIndex
from repro.kvs.rbtree import RBTreeIndex
from repro.workloads.keys import key_bytes


def fill(ctx, index, ids):
    records = {}
    for i in ids:
        key = key_bytes(i)
        rec = ctx.records.create(key, 16)
        index.build_insert(key, rec)
        records[i] = rec
    return records


class TestRBTree:
    def test_invariants_after_sequential_build(self, ctx):
        tree = RBTreeIndex(ctx)
        fill(ctx, tree, range(500))
        tree.check_invariants()

    def test_invariants_after_random_build(self, ctx):
        tree = RBTreeIndex(ctx)
        ids = list(range(500))
        random.Random(3).shuffle(ids)
        fill(ctx, tree, ids)
        tree.check_invariants()

    def test_invariants_through_timed_mutations(self, ctx):
        tree = RBTreeIndex(ctx)
        rng = random.Random(11)
        live = {}
        next_id = 0
        for step in range(600):
            if live and rng.random() < 0.45:
                victim = rng.choice(sorted(live))
                assert tree.remove(key_bytes(victim)) is live.pop(victim)
            else:
                key = key_bytes(next_id)
                rec = ctx.records.create(key, 8)
                tree.insert(key, rec)
                live[next_id] = rec
                next_id += 1
            if step % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == len(live)

    def test_depth_is_logarithmic(self, ctx):
        tree = RBTreeIndex(ctx)
        fill(ctx, tree, range(1024))
        black_height = tree.check_invariants()
        # a RB tree of n nodes has height <= 2*log2(n+1)
        assert black_height <= 12

    def test_traversal_cost_grows_with_size(self, ctx):
        small = RBTreeIndex(ctx)
        fill(ctx, small, range(16))
        before = ctx.mem.stats.accesses
        small.lookup(key_bytes(11))
        small_cost = ctx.mem.stats.accesses - before

        big = RBTreeIndex(ctx)
        fill(ctx, big, range(4096))
        before = ctx.mem.stats.accesses
        big.lookup(key_bytes(4000))
        big_cost = ctx.mem.stats.accesses - before
        assert big_cost > small_cost


class TestBTree:
    def test_invariants_after_sequential_build(self, ctx):
        tree = BTreeIndex(ctx)
        fill(ctx, tree, range(500))
        tree.check_invariants()

    def test_invariants_after_random_build(self, ctx):
        tree = BTreeIndex(ctx)
        ids = list(range(500))
        random.Random(5).shuffle(ids)
        fill(ctx, tree, ids)
        tree.check_invariants()

    def test_node_capacity_constants(self):
        # 16-byte header + 6 x (32-byte slot + 8-byte pointer) <= 256;
        # a split leaves floor((6-1)/2) = 2 keys in the smaller half
        assert MAX_KEYS == 6
        assert MIN_KEYS == 2

    def test_split_grows_height(self, ctx):
        tree = BTreeIndex(ctx)
        fill(ctx, tree, range(MAX_KEYS + 1))
        assert tree.height == 2

    def test_invariants_through_timed_mutations(self, ctx):
        tree = BTreeIndex(ctx)
        rng = random.Random(13)
        live = {}
        next_id = 0
        for step in range(600):
            if live and rng.random() < 0.45:
                victim = rng.choice(sorted(live))
                assert tree.remove(key_bytes(victim)) is live.pop(victim)
            else:
                key = key_bytes(next_id)
                rec = ctx.records.create(key, 8)
                tree.insert(key, rec)
                live[next_id] = rec
                next_id += 1
            if step % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == len(live)

    def test_remove_internal_key(self, ctx):
        tree = BTreeIndex(ctx)
        records = fill(ctx, tree, range(100))
        # the root keys are internal: removing one exercises the
        # predecessor-replacement path
        internal_key = tree.root.keys[0]
        key_id = int(internal_key[4:])
        assert tree.remove(internal_key) is records[key_id]
        tree.check_invariants()

    def test_drain_to_empty(self, ctx):
        tree = BTreeIndex(ctx)
        fill(ctx, tree, range(64))
        for i in range(64):
            assert tree.remove(key_bytes(i)) is not None
        assert len(tree) == 0
        assert tree.probe(key_bytes(1)) is None
