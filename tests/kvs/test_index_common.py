"""Behaviour shared by all four Table II index structures.

Parametrised over every index class: functional correctness (insert /
lookup / remove round-trips), timed-vs-untimed equivalence, and the
memory-traffic contract (lookups issue simulated accesses).
"""

import random

import pytest

from repro.kvs import INDEX_CLASSES, make_index
from repro.workloads.keys import key_bytes

ALL_INDEXES = sorted(INDEX_CLASSES)


@pytest.fixture(params=ALL_INDEXES)
def index(request, ctx):
    return make_index(request.param, ctx, expected_keys=512)


def fill(ctx, index, n, value_size=32):
    records = []
    for i in range(n):
        key = key_bytes(i)
        rec = ctx.records.create(key, value_size)
        index.build_insert(key, rec)
        records.append(rec)
    return records


class TestFunctional:
    def test_lookup_finds_all_inserted(self, ctx, index):
        records = fill(ctx, index, 300)
        for i, rec in enumerate(records):
            assert index.lookup(key_bytes(i)) is rec

    def test_lookup_missing_returns_none(self, ctx, index):
        fill(ctx, index, 50)
        assert index.lookup(key_bytes(999)) is None

    def test_probe_matches_lookup(self, ctx, index):
        fill(ctx, index, 100)
        for i in (0, 42, 99):
            assert index.probe(key_bytes(i)) is index.lookup(key_bytes(i))

    def test_len_tracks_size(self, ctx, index):
        fill(ctx, index, 77)
        assert len(index) == 77

    def test_timed_insert_visible(self, ctx, index):
        fill(ctx, index, 100)
        rec = ctx.records.create(key_bytes(100), 32)
        index.insert(key_bytes(100), rec)
        assert index.lookup(key_bytes(100)) is rec
        assert len(index) == 101

    def test_remove_deletes_only_target(self, ctx, index):
        records = fill(ctx, index, 100)
        removed = index.remove(key_bytes(50))
        assert removed is records[50]
        assert index.lookup(key_bytes(50)) is None
        assert index.lookup(key_bytes(49)) is records[49]
        assert index.lookup(key_bytes(51)) is records[51]
        assert len(index) == 99

    def test_remove_missing_returns_none(self, ctx, index):
        fill(ctx, index, 10)
        assert index.remove(key_bytes(999)) is None

    def test_interleaved_insert_remove(self, ctx, index):
        rng = random.Random(7)
        live = {}
        fill(ctx, index, 0)
        next_id = 0
        for _ in range(400):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                index.remove(key_bytes(victim))
                del live[victim]
            else:
                key = key_bytes(next_id)
                rec = ctx.records.create(key, 16)
                index.insert(key, rec)
                live[next_id] = rec
                next_id += 1
        for key_id, rec in live.items():
            assert index.lookup(key_bytes(key_id)) is rec
        assert len(index) == len(live)

    def test_empty_key_rejected(self, ctx, index):
        rec = ctx.records.create(b"x", 8)
        with pytest.raises(Exception):
            index.insert(b"", rec)


class TestTraffic:
    def test_lookup_issues_memory_accesses(self, ctx, index):
        fill(ctx, index, 200)
        before = ctx.mem.stats.accesses
        index.lookup(key_bytes(123))
        assert ctx.mem.stats.accesses > before

    def test_lookup_charges_hash_or_compare(self, ctx, index):
        fill(ctx, index, 200)
        before = ctx.mem.now
        index.lookup(key_bytes(7))
        assert ctx.mem.now > before

    def test_build_insert_is_untimed(self, ctx, index):
        before = ctx.mem.stats.accesses
        fill(ctx, index, 50)
        assert ctx.mem.stats.accesses == before

    def test_probe_is_untimed(self, ctx, index):
        fill(ctx, index, 50)
        before = ctx.mem.stats.accesses
        index.probe(key_bytes(10))
        assert ctx.mem.stats.accesses == before
