"""Structure-specific tests for the two hash-table indexes."""

import pytest

from repro.errors import KVSError
from repro.kvs.chained_hash import ChainedHashIndex
from repro.kvs.open_hash import OpenHashIndex
from repro.workloads.keys import key_bytes


def fill(ctx, index, n):
    records = []
    for i in range(n):
        key = key_bytes(i)
        rec = ctx.records.create(key, 16)
        index.build_insert(key, rec)
        records.append(rec)
    return records


class TestChained:
    def test_buckets_power_of_two(self, ctx):
        index = ChainedHashIndex(ctx, expected_keys=300)
        assert index.num_buckets == 512

    def test_load_factor(self, ctx):
        index = ChainedHashIndex(ctx, expected_keys=256)
        fill(ctx, index, 128)
        assert index.load_factor == pytest.approx(0.5)

    def test_collisions_chain_and_resolve(self, ctx):
        index = ChainedHashIndex(ctx, expected_keys=4)  # force collisions
        records = fill(ctx, index, 64)
        for i, rec in enumerate(records):
            assert index.probe(key_bytes(i)) is rec
        assert index.max_chain_length() > 1

    def test_remove_middle_of_chain(self, ctx):
        index = ChainedHashIndex(ctx, expected_keys=2)
        records = fill(ctx, index, 16)
        index.remove(key_bytes(7))
        for i, rec in enumerate(records):
            expected = None if i == 7 else rec
            assert index.probe(key_bytes(i)) is expected

    def test_redis_mode_reads_record_per_node(self, ctx):
        # cache_node_hash=False forces a record access per visited node
        index = ChainedHashIndex(ctx, expected_keys=2, cache_node_hash=False)
        fill(ctx, index, 8)
        before = ctx.mem.stats.accesses
        index.lookup(key_bytes(0))
        redis_accesses = ctx.mem.stats.accesses - before

        cached = ChainedHashIndex(ctx, expected_keys=2, cache_node_hash=True)
        fill(ctx, cached, 8)
        before = ctx.mem.stats.accesses
        cached.lookup(key_bytes(0))
        cached_accesses = ctx.mem.stats.accesses - before
        assert redis_accesses >= cached_accesses


class TestOpenHash:
    def test_load_capped_at_half(self, ctx):
        index = OpenHashIndex(ctx, expected_keys=100)
        fill(ctx, index, 100)
        assert index.load_factor <= 0.5

    def test_growth_preserves_content(self, ctx):
        index = OpenHashIndex(ctx, expected_keys=4)
        records = fill(ctx, index, 200)  # forces several doublings
        for i, rec in enumerate(records):
            assert index.probe(key_bytes(i)) is rec

    def test_tombstones_probed_through(self, ctx):
        index = OpenHashIndex(ctx, expected_keys=64)
        records = fill(ctx, index, 32)
        # delete half, then verify the rest still resolve through
        # any tombstones on their probe paths
        for i in range(0, 32, 2):
            index.remove(key_bytes(i))
        for i in range(1, 32, 2):
            assert index.probe(key_bytes(i)) is records[i]

    def test_duplicate_insert_rejected(self, ctx):
        index = OpenHashIndex(ctx, expected_keys=16)
        rec = ctx.records.create(key_bytes(0), 8)
        index.build_insert(key_bytes(0), rec)
        with pytest.raises(KVSError):
            index.insert(key_bytes(0), rec)

    def test_slot_reuse_after_delete(self, ctx):
        index = OpenHashIndex(ctx, expected_keys=16)
        fill(ctx, index, 8)
        index.remove(key_bytes(3))
        rec = ctx.records.create(key_bytes(100), 8)
        index.insert(key_bytes(100), rec)
        assert index.probe(key_bytes(100)) is rec
