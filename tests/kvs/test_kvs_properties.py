"""Property-based tests on the index structures (hypothesis).

Each index is driven by an arbitrary interleaving of inserts and removes
and must stay functionally equal to a Python dict, with structural
invariants (RB colouring, B-tree occupancy) holding throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvs import make_index
from repro.kvs.base import SimContext
from repro.workloads.keys import key_bytes

#: operation stream: (insert? , key id within a small universe)
ops_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(0, 40)), max_size=120
)


def run_model(index_name, ops):
    ctx = SimContext.create(slow_hash="murmur")
    index = make_index(index_name, ctx, expected_keys=64)
    model = {}
    for is_insert, key_id in ops:
        key = key_bytes(key_id)
        if is_insert and key_id not in model:
            rec = ctx.records.create(key, 8)
            index.insert(key, rec)
            model[key_id] = rec
        elif not is_insert:
            expected = model.pop(key_id, None)
            assert index.remove(key) is expected
    return index, model


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_chained_hash_matches_dict(ops):
    index, model = run_model("unordered_map", ops)
    assert len(index) == len(model)
    for key_id, rec in model.items():
        assert index.probe(key_bytes(key_id)) is rec


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_open_hash_matches_dict(ops):
    index, model = run_model("dense_hash_map", ops)
    assert len(index) == len(model)
    for key_id, rec in model.items():
        assert index.probe(key_bytes(key_id)) is rec


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_rbtree_matches_dict_and_invariants(ops):
    index, model = run_model("ordered_map", ops)
    assert len(index) == len(model)
    index.check_invariants()
    for key_id, rec in model.items():
        assert index.probe(key_bytes(key_id)) is rec


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_btree_matches_dict_and_invariants(ops):
    index, model = run_model("btree", ops)
    assert len(index) == len(model)
    index.check_invariants()
    for key_id, rec in model.items():
        assert index.probe(key_bytes(key_id)) is rec
