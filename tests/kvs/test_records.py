"""Record and record-store tests."""

import pytest

from repro.errors import KVSError
from repro.kvs.records import RECORD_HEADER_BYTES, RecordStore


@pytest.fixture
def store(ctx):
    return ctx.records


class TestCreate:
    def test_layout_is_contiguous(self, store):
        rec = store.create(b"k" * 24, 64)
        assert rec.total_size == RECORD_HEADER_BYTES + 24 + 64
        assert rec.value_va == rec.va + RECORD_HEADER_BYTES + 24

    def test_arbitrary_sizes_supported(self, store):
        # the capability HTA/SDC lack: records beyond one cache line
        big = store.create(b"k" * 100, 800)
        assert big.total_size > 64

    def test_empty_key_rejected(self, store):
        with pytest.raises(KVSError):
            store.create(b"", 64)

    def test_negative_value_rejected(self, store):
        with pytest.raises(KVSError):
            store.create(b"k", -1)

    def test_external_layout(self, store):
        rec = store.create_external(b"k" * 24, 64)
        assert rec.external_value_va is not None
        # the record allocation holds only header + key
        assert rec.total_size == RECORD_HEADER_BYTES + 24
        assert rec.value_va == rec.external_value_va

    def test_records_registered_by_va(self, store):
        rec = store.create(b"kk", 8)
        assert store.by_va[rec.va] is rec


class TestDestroyMove:
    def test_destroy_frees(self, store):
        rec = store.create(b"kk", 8)
        store.destroy(rec)
        assert rec.va not in store.by_va
        with pytest.raises(KVSError):
            store.destroy(rec)

    def test_destroy_external_frees_both(self, store):
        live_before = store.alloc.objects_live
        rec = store.create_external(b"kk", 64)
        store.destroy(rec)
        assert store.alloc.objects_live == live_before

    def test_move_changes_va(self, store):
        rec = store.create(b"kk", 8)
        old_va = rec.va
        returned = store.move(rec)
        assert returned == old_va
        assert rec.va != old_va
        assert rec.moves == 1
        assert store.by_va[rec.va] is rec

    def test_move_grows_value(self, store):
        rec = store.create(b"kk", 8)
        store.move(rec, new_value_size=256)
        assert rec.value_size == 256


class TestTimedAccess:
    def test_compare_reads_header_and_key(self, ctx):
        rec = ctx.records.create(b"k" * 24, 64)
        before = ctx.mem.stats.accesses
        ctx.records.access_for_compare(rec)
        assert ctx.mem.stats.accesses == before + 1

    def test_value_read_spans_lines(self, ctx):
        rec = ctx.records.create(b"k" * 24, 256)
        res_cycles = ctx.records.access_value(rec)
        assert res_cycles > 0

    def test_zero_value_read_free(self, ctx):
        rec = ctx.records.create(b"k", 0)
        rec.value_size = 0
        assert ctx.records.access_value(rec) == 0

    def test_write_value(self, ctx):
        rec = ctx.records.create(b"k" * 24, 64)
        before = ctx.mem.stats.writes
        ctx.records.write_value(rec)
        assert ctx.mem.stats.writes == before + 1
