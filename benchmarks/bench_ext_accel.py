"""Five-design translation-accel head-to-head on the Fig. 11 workload.

Runs the Redis workload once per translation design — ``baseline``
(``accel=none``), the paper's ``stlt``, and the three rival backends
``victima`` / ``pcax`` / ``revelator`` — under the *same* memory
system, and reports simulated cycles/op, speedup over baseline, and
page-walk / STLB-miss reductions per design.

Emits ``BENCH_accel.json`` at the repo root and **fails** (exit 1 /
assertion) if the STLT design's smoke speedup over baseline drops
below the pinned floor: the paper's address-centric design must beat
the translation-centric rivals' common anchor.  CI runs this as part
of the accel-smoke job.

Scale is env-tunable like the sweep specs: ``REPRO_BENCH_KEYS`` /
``REPRO_BENCH_OPS`` override the full-size point.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_ext_accel           # full
    PYTHONPATH=src python -m benchmarks.bench_ext_accel --smoke   # floor only
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import List

from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment

#: the pinned floor: accel=stlt must beat the shared baseline by at
#: least this much on the smoke config (measured 1.41x; pinned with
#: headroom so scheduler noise cannot flake CI — this is *simulated*
#: cycles, so the only noise source is a code regression)
SPEEDUP_FLOOR = 1.10

#: the five designs of the head-to-head (ISSUE acceptance criterion)
DESIGNS = ("none", "stlt", "victima", "pcax", "revelator")

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_accel.json"

#: smoke first: it carries the floor.  fig11 is the paper-scale point
#: (footprint well past L2-TLB reach so every design differentiates);
#: env knobs let CI shrink it.
SIZES = (
    ("smoke", dict(num_keys=4_000, measure_ops=800, warmup_ops=1_600)),
    ("fig11", dict(
        num_keys=int(os.environ.get("REPRO_BENCH_KEYS", "60000")),
        measure_ops=int(os.environ.get("REPRO_BENCH_OPS", "2000")),
        warmup_ops=2 * int(os.environ.get("REPRO_BENCH_OPS", "2000")),
    )),
)


def _reduction(base: int, measured: int) -> float:
    if base <= 0:
        return 0.0
    return round(100.0 * (base - measured) / base, 1)


def measure_size(name: str, size: dict) -> dict:
    out = {"name": name, **size, "designs": {}}
    anchor = None
    for design in DESIGNS:
        config = RunConfig(program="redis", frontend="baseline",
                           accel=design, **size)
        result = run_experiment(config)
        row = {
            "cycles_per_op": round(result.cycles_per_op, 2),
            "page_walks": result.page_walks,
            "stlb_misses": result.tlb_misses,
        }
        if result.accel is not None:
            row["telemetry"] = result.accel
        if design == "none":
            anchor = row
            row["speedup"] = 1.0
        else:
            row["speedup"] = round(
                anchor["cycles_per_op"] / row["cycles_per_op"], 3)
            row["walk_reduction_pct"] = _reduction(
                anchor["page_walks"], row["page_walks"])
            row["stlb_miss_reduction_pct"] = _reduction(
                anchor["stlb_misses"], row["stlb_misses"])
        out["designs"][design] = row
    return out


def run_bench(smoke_only: bool = False) -> dict:
    sizes: List[dict] = []
    for name, size in SIZES:
        sizes.append(measure_size(name, size))
        for design, row in sizes[-1]["designs"].items():
            print(f"{name:>6} {design:<10} "
                  f"{row['cycles_per_op']:>8.1f} cycles/op  "
                  f"{row['speedup']:.2f}x  "
                  f"walks={row['page_walks']}")
        if smoke_only:
            break
    return {
        "benchmark": "ext_accel",
        "floor": SPEEDUP_FLOOR,
        "smoke_stlt_speedup": sizes[0]["designs"]["stlt"]["speedup"],
        "sizes": sizes,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def check_floor(payload: dict) -> None:
    smoke = payload["smoke_stlt_speedup"]
    if smoke < payload["floor"]:
        raise AssertionError(
            f"accel=stlt regressed: smoke speedup {smoke:.2f}x over "
            f"baseline is below the pinned {payload['floor']:.2f}x floor")


def test_accel_speedup_floor():
    """Pytest entry: accel=stlt must hold the pinned smoke floor."""
    payload = run_bench(smoke_only=True)
    check_floor(payload)


def main(argv: List[str]) -> int:
    smoke_only = "--smoke" in argv
    payload = run_bench(smoke_only=smoke_only)
    if not smoke_only:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    try:
        check_floor(payload)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"ok: smoke accel=stlt speedup "
          f"{payload['smoke_stlt_speedup']:.2f}x >= "
          f"{SPEEDUP_FLOOR:.2f}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
