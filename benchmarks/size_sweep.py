"""Shared size sweep backing Figs. 14, 15, and 16.

The paper sweeps the STLT from 16 MB to 512 MB over a 10 M-key store,
i.e. from ~0.1 to ~3.2 rows per key.  We sweep the same rows-per-key
ratios; the printed tables label each point with both the simulated table
size and the paper-equivalent size (ratio x 10 M keys x 16 B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.common import BENCH_KEYS, bench_config, run_cached

#: rows-per-key ratios spanning the paper's 16 MB..512 MB range
ROW_RATIOS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0)

PROGRAMS = ("redis", "unordered_map", "dense_hash_map", "ordered_map",
            "btree")


def rows_for_ratio(ratio: float, num_keys: int = BENCH_KEYS) -> int:
    target = int(num_keys * ratio)
    rows = 1
    while rows < target:
        rows <<= 1
    return max(rows, 1024)


def paper_equivalent_mb(ratio: float) -> int:
    """STLT bytes the same ratio implies at the paper's 10 M keys."""
    return int(ratio * 10_000_000 * 16 / (1 << 20))


def sweep(programs=PROGRAMS) -> Dict[Tuple[str, float, str], dict]:
    """Run {program} x {ratio} x {baseline, slb, stlt}; cached."""
    out: Dict[Tuple[str, float, str], dict] = {}
    for program in programs:
        baseline = run_cached(bench_config(program=program,
                                           frontend="baseline"))
        for ratio in ROW_RATIOS:
            rows = rows_for_ratio(ratio)
            out[(program, ratio, "baseline")] = baseline
            for frontend in ("slb", "stlt"):
                config = bench_config(program=program, frontend=frontend,
                                      stlt_rows=rows)
                out[(program, ratio, frontend)] = run_cached(config)
    return out


def ratio_labels() -> List[str]:
    return [f"{paper_equivalent_mb(r)}MB" for r in ROW_RATIOS]
