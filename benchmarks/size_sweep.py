"""Shared size sweep backing Figs. 14, 15, and 16.

The paper sweeps the STLT from 16 MB to 512 MB over a 10 M-key store,
i.e. from ~0.1 to ~3.2 rows per key.  We sweep the same rows-per-key
ratios; the printed tables label each point with both the simulated table
size and the paper-equivalent size (ratio x 10 M keys x 16 B).

The campaign itself (program x ratio x {baseline, slb, stlt}) is defined
once in :func:`repro.exp.spec.size_sweep_points` and submitted through
the :mod:`repro.exp` runner: all runs fan out over ``REPRO_BENCH_JOBS``
worker processes, land in the shared durable store, and come back in
deterministic order — the three figures share one simulated sweep.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exp.spec import SIZE_SWEEP_RATIOS, size_sweep_points
from repro.exp.spec import rows_for_ratio as _rows_for_ratio

from benchmarks.common import BENCH_KEYS, BENCH_OPS, run_many

#: rows-per-key ratios spanning the paper's 16 MB..512 MB range
ROW_RATIOS = SIZE_SWEEP_RATIOS

PROGRAMS = ("redis", "unordered_map", "dense_hash_map", "ordered_map",
            "btree")


def rows_for_ratio(ratio: float, num_keys: int = BENCH_KEYS) -> int:
    return _rows_for_ratio(ratio, num_keys)


def paper_equivalent_mb(ratio: float) -> int:
    """STLT bytes the same ratio implies at the paper's 10 M keys."""
    return int(ratio * 10_000_000 * 16 / (1 << 20))


def sweep(programs=PROGRAMS) -> Dict[Tuple[str, float, str], dict]:
    """Run {program} x {ratio} x {baseline, slb, stlt} via ``repro.exp``.

    One shared baseline per program is simulated once and fanned back
    out to every ratio, exactly as the serial harness did; the mapping
    from sweep points to ``(program, ratio, frontend)`` keys relies on
    each point's ``params``.
    """
    points = size_sweep_points(BENCH_KEYS, BENCH_OPS, programs=programs,
                               ratios=ROW_RATIOS)
    metrics = run_many([p.config for p in points])

    out: Dict[Tuple[str, float, str], dict] = {}
    for point, metric in zip(points, metrics):
        program = point.params["program"]
        frontend = point.params["frontend"]
        if frontend == "baseline":
            for ratio in ROW_RATIOS:
                out[(program, ratio, "baseline")] = metric
        else:
            out[(program, point.params["ratio"], frontend)] = metric
    return out


def ratio_labels() -> List[str]:
    return [f"{paper_equivalent_mb(r)}MB" for r in ROW_RATIOS]
