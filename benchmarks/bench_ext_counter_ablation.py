"""Extension/ablation: the probabilistic 4-bit LFU counter (Sec. III-E).

The paper keeps a 4-bit probabilistically incremented frequency counter
per row so ``insertSTLT`` can evict the least frequently used way.  This
ablation disables the counter (all rows stay at 0, so the replacement
degenerates to fixed-way overwrite) and measures what the counter buys
on a *small* STLT, where replacement decisions matter most.

Expected shape: the LFU counter lowers the STLT miss rate (hot rows are
protected from churn) and yields equal-or-better performance; the effect
shrinks as the table grows and conflict pressure fades.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_once,
    speedup_of,
)
from benchmarks.size_sweep import rows_for_ratio
from repro.core.counters import ProbabilisticCounterPolicy
from repro.sim.engine import Engine


class _DisabledCounterPolicy(ProbabilisticCounterPolicy):
    """Ablation: counters never move, making LFU replacement blind."""

    def update(self, value: int) -> int:
        self.updates += 1
        return 0


def _run(ratio: float, disable_counter: bool) -> dict:
    config = bench_config(program="unordered_map", frontend="stlt",
                          stlt_rows=rows_for_ratio(ratio))
    engine = Engine(config)
    if disable_counter:
        stlt = engine.stu.stlt
        stlt.counter_policy = _DisabledCounterPolicy()
        stlt.clear()
        engine._prefill_fast_tables()
    result = engine.run()
    return {
        "cycles_per_op": result.cycles_per_op,
        "fast_miss_rate": result.fast_miss_rate,
    }


def test_ext_counter_ablation(benchmark):
    ratios = (0.25, 0.5, 1.0)

    def sweep():
        out = {}
        for ratio in ratios:
            out[(ratio, "lfu")] = _run(ratio, disable_counter=False)
            out[(ratio, "blind")] = _run(ratio, disable_counter=True)
        return out

    runs = run_once(benchmark, sweep)
    rows = []
    for ratio in ratios:
        lfu = runs[(ratio, "lfu")]
        blind = runs[(ratio, "blind")]
        rows.append([
            f"{ratio:.2f} rows/key",
            f"{lfu['fast_miss_rate']:.2%}",
            f"{blind['fast_miss_rate']:.2%}",
            f"{speedup_of(blind, lfu):.3f}x",
        ])
    print_figure(
        "Ablation — probabilistic LFU counter vs blind replacement",
        ["STLT size", "miss (LFU)", "miss (blind)", "LFU speedup"],
        rows,
        notes=["design choice of Sec. III-E: the 4-bit counter guides"
               " insertSTLT's victim selection"],
    )

    # the counter must help (or at worst tie) at every pressure level
    wins = 0
    for ratio in ratios:
        lfu = runs[(ratio, "lfu")]
        blind = runs[(ratio, "blind")]
        assert lfu["fast_miss_rate"] <= blind["fast_miss_rate"] + 0.01
        if lfu["fast_miss_rate"] < blind["fast_miss_rate"]:
            wins += 1
    assert wins >= 1, "LFU must beat blind replacement somewhere"
