"""Fig. 18: STLT fast-path hash-function sensitivity on Redis.

Paper reference (zipf, 64 B): different fast-path hash functions change
performance by up to 19.4%.  sipHash has the *lowest* STLT miss rate but
also the lowest speedup (it is slow to compute); the cheap hashes win
despite slightly higher conflict rates.  The slow path keeps Redis's
original SipHash throughout.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
    speedup_of,
)

FAST_HASHES = ("siphash", "murmur", "xxh64", "djb2", "xxh3")


def _sweep():
    baseline = run_cached(bench_config(program="redis",
                                       frontend="baseline"))
    runs = {
        name: run_cached(bench_config(program="redis", frontend="stlt",
                                      fast_hash=name))
        for name in FAST_HASHES
    }
    return baseline, runs


def test_fig18_hash_sensitivity(benchmark):
    baseline, runs = run_once(benchmark, _sweep)

    speeds = {name: speedup_of(baseline, res) for name, res in runs.items()}
    rows = [
        [name, f"{speeds[name]:.3f}x",
         f"{runs[name]['fast_miss_rate']:.2%}"]
        for name in FAST_HASHES
    ]
    variation = (max(speeds.values()) - min(speeds.values())) \
        / min(speeds.values())
    print_figure(
        "Fig. 18 — STLT speedup and miss rate per fast-path hash (Redis)",
        ["fast hash", "speedup", "STLT miss rate"],
        rows,
        notes=[
            "paper: up to 19.4% performance variation; sipHash lowest"
            " miss rate but lowest speedup",
            f"measured variation: {variation:.1%}",
        ],
    )

    # shape: all variants still speed Redis up
    for name, s in speeds.items():
        assert s > 1.0, f"{name} fast path must still win"
    # shape: the expensive sipHash must not be the fastest option
    assert speeds["siphash"] < max(speeds.values()) - 1e-9
    # shape: the hash choice matters measurably
    assert variation > 0.02
    # shape: siphash's randomness gives it one of the lowest miss rates
    miss = {n: runs[n]["fast_miss_rate"] for n in FAST_HASHES}
    assert miss["siphash"] <= min(miss.values()) + 0.005
