"""Table I: on-chip hardware space overhead for STLT.

This reproduction is exact — the component inventory is arithmetic over
the architectural parameters, and our accounting must match the paper's
bit-for-bit: CR_S 64 b, IPB 1158 b, STB 4096 b, insertion buffer 1376 b,
total 6694 bits = 837 bytes.
"""

from benchmarks.common import print_figure, run_once
from repro.core.hwcost import accel_hardware_cost, hardware_cost

PAPER_TABLE_I = {
    "CR_S": 64,
    "Invalid page buffer": 1158,
    "STB": 4096,
    "Insertion buffer": 1376,
    "Total": 6694,
}

#: per-backend budgets for the translation-accel head-to-head, at the
#: default accounting parameters (these are *our* cost models — pinned
#: so refactors cannot silently change a design's reported budget)
ACCEL_BUDGET_BYTES = {
    "stlt": 837,          # Table I exactly
    "victima": 9284,      # L2/L3 TLB-block tags dominate
    "pcax": 157726,       # 4096-set x 4-way PC-indexed table
    "revelator": 30,      # near-free: seeds + status + comparator
}


def test_tab1_hardware_cost(benchmark):
    report = run_once(benchmark, hardware_cost)
    rows = []
    for component, bits in report.rows():
        rows.append([component, str(PAPER_TABLE_I[component]), str(bits)])
    print_figure(
        "Table I — Hardware space overhead for STLT (bits)",
        ["component", "paper", "measured"],
        rows,
        notes=[f"total bytes: paper 837, measured {report.total_bytes}"],
    )
    for component, bits in report.rows():
        assert bits == PAPER_TABLE_I[component], component
    assert report.total_bytes == 837


def test_tab1_accel_backend_budgets(benchmark):
    reports = run_once(
        benchmark,
        lambda: {accel: accel_hardware_cost(accel)
                 for accel in ACCEL_BUDGET_BYTES})
    rows = [[accel, str(ACCEL_BUDGET_BYTES[accel]),
             str(report.total_bytes)]
            for accel, report in reports.items()]
    print_figure(
        "Table I (ext) — per-backend translation-accel budgets (bytes)",
        ["backend", "pinned", "measured"],
        rows,
        notes=["stlt row is the paper's Table I; rivals use the "
               "repro.core.hwcost per-backend cost models"],
    )
    for accel, report in reports.items():
        assert report.total_bytes == ACCEL_BUDGET_BYTES[accel], accel
    # accel=none carries no hardware at all
    assert accel_hardware_cost("none").total_bytes == 0
