"""Table I: on-chip hardware space overhead for STLT.

This reproduction is exact — the component inventory is arithmetic over
the architectural parameters, and our accounting must match the paper's
bit-for-bit: CR_S 64 b, IPB 1158 b, STB 4096 b, insertion buffer 1376 b,
total 6694 bits = 837 bytes.
"""

from benchmarks.common import print_figure, run_once
from repro.core.hwcost import hardware_cost

PAPER_TABLE_I = {
    "CR_S": 64,
    "Invalid page buffer": 1158,
    "STB": 4096,
    "Insertion buffer": 1376,
    "Total": 6694,
}


def test_tab1_hardware_cost(benchmark):
    report = run_once(benchmark, hardware_cost)
    rows = []
    for component, bits in report.rows():
        rows.append([component, str(PAPER_TABLE_I[component]), str(bits)])
    print_figure(
        "Table I — Hardware space overhead for STLT (bits)",
        ["component", "paper", "measured"],
        rows,
        notes=[f"total bytes: paper 837, measured {report.total_bytes}"],
    )
    for component, bits in report.rows():
        assert bits == PAPER_TABLE_I[component], component
    assert report.total_bytes == 837
