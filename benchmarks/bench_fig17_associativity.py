"""Fig. 17: speedup of 1-, 2-, 4- and 8-way associative STLT.

Paper reference (zipf, 64 B, four kernel benchmarks): 1-way is
competitive for small tables (cheaper scans), 8-way is competitive at
mid sizes (fewer conflicts) but pays scan overhead, and 4-way is the
most stable — first or second best for every benchmark at every size.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
    speedup_of,
)
from benchmarks.size_sweep import rows_for_ratio

ASSOCIATIVITIES = (1, 2, 4, 8)
RATIOS = (0.25, 1.0, 4.0)
PROGRAMS = ("unordered_map", "dense_hash_map", "ordered_map", "btree")


def _sweep():
    out = {}
    for program in PROGRAMS:
        out[(program, "baseline")] = run_cached(
            bench_config(program=program, frontend="baseline"))
        for ratio in RATIOS:
            rows = rows_for_ratio(ratio)
            for ways in ASSOCIATIVITIES:
                config = bench_config(program=program, frontend="stlt",
                                      stlt_rows=rows, stlt_ways=ways)
                out[(program, ratio, ways)] = run_cached(config)
    return out


def test_fig17_associativity(benchmark):
    all_runs = run_once(benchmark, _sweep)

    rows = []
    ranks = {ways: 0 for ways in ASSOCIATIVITIES}
    cells = {}
    for program in PROGRAMS:
        base = all_runs[(program, "baseline")]
        for ratio in RATIOS:
            speeds = {
                ways: speedup_of(base, all_runs[(program, ratio, ways)])
                for ways in ASSOCIATIVITIES
            }
            cells[(program, ratio)] = speeds
            ordered = sorted(speeds, key=speeds.get, reverse=True)
            for place, ways in enumerate(ordered):
                if place < 2:
                    ranks[ways] += 1
            rows.append([program, f"{ratio:.2f} rows/key"] +
                        [f"{speeds[w]:.2f}" for w in ASSOCIATIVITIES])
    print_figure(
        "Fig. 17 — speedup of 1/2/4/8-way associative STLT",
        ["program", "size"] + [f"{w}-way" for w in ASSOCIATIVITIES],
        rows,
        notes=["paper: 4-way is first or second best everywhere",
               f"top-2 finishes per associativity: {ranks}"],
    )

    # shape: 4-way is the stablest choice — top-2 in (almost) every cell
    total_cells = len(PROGRAMS) * len(RATIOS)
    assert ranks[4] >= total_cells - 2, (
        f"4-way must be first or second nearly everywhere, got {ranks[4]}"
        f"/{total_cells}"
    )
    # shape: associativity matters more for small tables (conflicts);
    # at the smallest size the spread across ways is visible
    for program in PROGRAMS:
        speeds = cells[(program, RATIOS[0])]
        assert max(speeds.values()) > min(speeds.values()), program
