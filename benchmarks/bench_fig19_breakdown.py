"""Fig. 19 (left): STLT-SW / STLT-VA / STLT configurations versus SLB.

Paper reference: SLB outperforms the software-only STLT-SW (especially
on trees); the hardware-instruction STLT-VA slightly outperforms SLB;
and the full STLT — which also caches PTEs and feeds the STB — clearly
improves on all of them by skipping address translations.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
)
from repro.sim.results import geomean

PROGRAMS = ("unordered_map", "dense_hash_map", "ordered_map", "btree")
VARIANTS = ("stlt_sw", "stlt_va", "stlt")


def _sweep():
    out = {}
    for program in PROGRAMS:
        out[(program, "slb")] = run_cached(
            bench_config(program=program, frontend="slb"))
        for variant in VARIANTS:
            out[(program, variant)] = run_cached(
                bench_config(program=program, frontend=variant))
    return out


def test_fig19_left_configuration_breakdown(benchmark):
    all_runs = run_once(benchmark, _sweep)

    rows = []
    improvements = {v: [] for v in VARIANTS}
    for program in PROGRAMS:
        slb_cpo = all_runs[(program, "slb")]["cycles_per_op"]
        line = [program]
        for variant in VARIANTS:
            ratio = slb_cpo / all_runs[(program, variant)]["cycles_per_op"]
            improvements[variant].append(ratio)
            line.append(f"{ratio:.2f}x")
        rows.append(line)
    rows.append(["geomean"] +
                [f"{geomean(improvements[v]):.2f}x" for v in VARIANTS])
    print_figure(
        "Fig. 19 (left) — improvement over SLB per STLT configuration",
        ["program", "STLT-SW", "STLT-VA", "STLT"],
        rows,
        notes=["paper: SLB > STLT-SW; STLT-VA slightly > SLB;"
               " full STLT clearly best"],
    )

    sw = geomean(improvements["stlt_sw"])
    va = geomean(improvements["stlt_va"])
    full = geomean(improvements["stlt"])
    assert sw < 1.05, "software-only STLT must not beat SLB meaningfully"
    assert va > sw, "hardware instructions must improve on the SW table"
    assert full > va, "PTE caching must improve on VA-only"
    assert full > 1.05, "full STLT must clearly beat SLB"
