"""Extension: speedup retention under OS churn (PR 4).

The paper measures STLT on a quiet machine; Section III-D1/III-F spend
their hardware budget (IPB, kernel vpn array, scrub path, STLTresize)
on the *unquiet* one — pages migrate, records realloc, processes context
switch, the table resizes cold.  This extension turns that machinery on:
a seeded chaos schedule fires OS-level events at swept intensities while
the stale-translation oracle cross-checks every GET against the
authoritative store.

Reproduction targets:

* **correctness is churn-proof** — zero oracle violations at every
  intensity: stale fast-path rows die by IPB filtering, overflow
  scrubs, or semantic validation, never by luck;
* **speedup degrades monotonically** with churn intensity: every event
  burns STLT state (scrubbed rows, cold restarts) that the baseline
  never had, so the quiet-run speedup erodes as the event rate grows;
* **moderate churn keeps the win** — at the paper-plausible intensities
  (up to ~1 event per 50 ops/core) STLT still beats the baseline
  outright; only the extreme tail of the sweep, where cold resizes land
  inside the scaled-down measured window, is allowed to eat the whole
  speedup.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_many,
    run_once,
    speedup_of,
)
from repro.exp.spec import CHURN_SWEEP_RATES

FRONTENDS = ("baseline", "stlt")

#: intensities where the acceleration must survive outright (the rest
#: of the sweep only has to degrade monotonically; the top of the
#: sweep is an adversarial storm that is *allowed* to eat the win)
MODERATE_RATES = tuple(r for r in CHURN_SWEEP_RATES if 0 < r <= 0.01)


def _sweep():
    configs = {
        (frontend, rate): bench_config(
            program="unordered_map", frontend=frontend, num_cores=2,
            churn_rate=rate)
        for frontend in FRONTENDS
        for rate in CHURN_SWEEP_RATES
    }
    keys = list(configs)
    metrics = run_many([configs[k] for k in keys])
    return dict(zip(keys, metrics))


def test_ext_speedup_retention_under_churn(benchmark):
    runs = run_once(benchmark, _sweep)

    speedups = {}
    rows = []
    quiet = None
    for rate in CHURN_SWEEP_RATES:
        base = runs[("baseline", rate)]
        stlt = runs[("stlt", rate)]
        ratio = speedup_of(base, stlt)
        speedups[rate] = ratio
        if rate == 0:
            quiet = ratio
        rows.append([
            f"{rate:g}",
            f"{base['cycles_per_op']:.1f}",
            f"{stlt['cycles_per_op']:.1f}",
            f"{ratio:.2f}x",
            f"{ratio / quiet:.0%}" if quiet else "-",
            str(stlt["ipb_overflows"] or 0),
            str(stlt["stlt_rows_scrubbed"] or 0),
            str(stlt["oracle_violations"]
                if stlt["oracle_violations"] is not None else "-"),
        ])

    print_figure(
        "Extension — STLT speedup retention under OS churn "
        "(2 cores, migrate/realloc/ctx-switch/unmap/resize events)",
        ["churn", "base cyc/op", "stlt cyc/op", "speedup", "retention",
         "IPB ovfl", "rows scrubbed", "violations"],
        rows,
        notes=[
            "churn = per-(op, core) event probability; events are a "
            "seeded schedule, identical across front-ends",
            "every fast-path GET is cross-checked by the stale-"
            "translation oracle (untimed)",
        ],
    )

    # correctness is churn-proof: the oracle never caught a stale GET
    for (frontend, rate), m in runs.items():
        if rate > 0:
            assert m["oracle_violations"] == 0, (
                f"{frontend} @ churn {rate:g}: "
                f"{m['oracle_violations']} oracle violations")

    # churn actually exercised the coherence machinery
    top = runs[("stlt", CHURN_SWEEP_RATES[-1])]
    assert top["ipb_overflows"] > 0
    assert top["stlt_rows_scrubbed"] > 0

    # monotonic degradation: more churn, less speedup (2% tolerance
    # absorbs schedule granularity at small measured windows)
    ordered = [speedups[rate] for rate in CHURN_SWEEP_RATES]
    for lighter, heavier in zip(ordered, ordered[1:]):
        assert heavier <= lighter * 1.02, (
            f"speedup went up with churn: {ordered}")
    assert ordered[-1] < ordered[0], "churn never cost anything"

    # the win survives moderate churn outright
    for rate in MODERATE_RATES:
        assert speedups[rate] > 1.0, (
            f"STLT lost to baseline at moderate churn {rate:g}: "
            f"{speedups[rate]:.2f}x")
