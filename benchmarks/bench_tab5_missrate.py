"""Table V: STLT and SLB miss rates per distribution (Redis workloads).

Paper reference: zipf SLB 1.42% / STLT 1.75%; latest 0.30% / 0.85%;
uniform SLB 7.47% / STLT 3.61%.  Shapes we hold: both tables run low
(single-digit percent) miss rates, SLB is at or below STLT on the
skewed distributions, and the 'latest' workload shows the lowest rates.

Known deviation (see EXPERIMENTS.md): at equal entry counts our honest
SLB model does not reproduce the paper's high uniform miss rate, because
admission contention never materialises when every key fits; the paper's
uniform SLB number appears to reflect log-table admission dynamics of
the authors' 10 GB configuration that they do not fully specify.
"""

from benchmarks.common import bench_config, print_figure, run_cached, run_once

PAPER = {
    "zipf": (0.0142, 0.0175),
    "latest": (0.0030, 0.0085),
    "uniform": (0.0747, 0.0361),
}


def test_tab5_miss_rates(benchmark):
    def run_all():
        out = {}
        for dist in PAPER:
            out[dist] = {
                fe: run_cached(bench_config(program="redis", frontend=fe,
                                            distribution=dist))
                for fe in ("slb", "stlt")
            }
        return out

    runs = run_once(benchmark, run_all)
    rows = []
    for dist, per_fe in runs.items():
        paper_slb, paper_stlt = PAPER[dist]
        rows.append([
            dist,
            f"{paper_slb:.2%}", f"{per_fe['slb']['fast_miss_rate']:.2%}",
            f"{paper_stlt:.2%}", f"{per_fe['stlt']['fast_miss_rate']:.2%}",
        ])
    print_figure(
        "Table V — STLT and SLB miss rate",
        ["distribution", "SLB paper", "SLB meas.",
         "STLT paper", "STLT meas."],
        rows,
        notes=["both tables sized to the paper's rows-per-key ratio"],
    )

    for dist, per_fe in runs.items():
        for fe in ("slb", "stlt"):
            assert per_fe[fe]["fast_miss_rate"] < 0.10, (
                f"{fe} miss rate on {dist} out of regime"
            )
    # skewed distributions: SLB's frequency-precise 7-way table is at or
    # below the 4-way partial-tag STLT, as in the paper
    for dist in ("zipf", "latest"):
        assert runs[dist]["slb"]["fast_miss_rate"] <= \
            runs[dist]["stlt"]["fast_miss_rate"] + 0.002
    # latest is the friendliest distribution for both tables
    assert runs["latest"]["stlt"]["fast_miss_rate"] <= \
        runs["zipf"]["stlt"]["fast_miss_rate"] + 0.002
