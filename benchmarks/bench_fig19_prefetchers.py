"""Fig. 19 (right): slowdown caused by hardware prefetchers (no STLT).

Paper reference: distance TLB prefetching is performance-neutral (its
accuracy collapses on these workloads); the two LLC data prefetchers —
a stride/stream scheme ("Simple") and VLDP — *hurt*, by 17.7% and 9.4%
on average, because inaccurate prefetches flood the memory channel and
pollute the cache without cutting demand misses.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
)
from repro.sim.results import geomean

PROGRAMS = ("redis", "unordered_map", "dense_hash_map", "ordered_map",
            "btree")
PREFETCHERS = ("tlb_distance", "stream", "vldp")


def _sweep():
    out = {}
    for program in PROGRAMS:
        out[(program, "none")] = run_cached(
            bench_config(program=program, frontend="baseline"))
        for pf in PREFETCHERS:
            out[(program, pf)] = run_cached(
                bench_config(program=program, frontend="baseline",
                             prefetchers=(pf,)))
    return out


def test_fig19_right_prefetcher_slowdowns(benchmark):
    all_runs = run_once(benchmark, _sweep)

    rows = []
    slowdowns = {pf: [] for pf in PREFETCHERS}
    for program in PROGRAMS:
        base = all_runs[(program, "none")]["cycles_per_op"]
        line = [program]
        for pf in PREFETCHERS:
            run = all_runs[(program, pf)]
            ratio = run["cycles_per_op"] / base
            slowdowns[pf].append(ratio)
            line.append(f"{(ratio - 1):+.1%}")
        line.append(f"{all_runs[(program, 'vldp')]['prefetch_accuracy']:.1%}")
        rows.append(line)
    rows.append(["geomean"] +
                [f"{(geomean(slowdowns[pf]) - 1):+.1%}"
                 for pf in PREFETCHERS] + ["-"])
    print_figure(
        "Fig. 19 (right) — prefetcher-induced slowdown vs no prefetching",
        ["program", "TLB dist.", "stream", "VLDP", "VLDP accuracy"],
        rows,
        notes=["paper: TLB distance prefetching ~neutral; stream -17.7%,"
               " VLDP -9.4% on average"],
    )

    tlb = geomean(slowdowns["tlb_distance"])
    stream = geomean(slowdowns["stream"])
    vldp = geomean(slowdowns["vldp"])
    assert abs(tlb - 1.0) < 0.05, "TLB prefetching must be ~neutral"
    assert stream > 1.02, "stream prefetching must hurt"
    assert vldp > 1.02, "VLDP must hurt"
