"""Extension: core-count scalability over the shared store (PR 2).

The paper evaluates a single 8-core machine (Table III) but reports
per-core numbers; this extension sweeps the core count explicitly.  Each
core streams its own YCSB workload against one shared store — shared
index, record store, STLT, L3, and one DRAM channel — while keeping
private L1/L2, TLBs, and STB, so the sweep exposes exactly the effects
the private/shared split models:

* aggregate throughput (ops per wall-clock cycle) rises with cores but
  sub-linearly as the DRAM channel and L3 start to contend;
* the shared STLT keeps serving every core: per-core hit rates stay in
  family with the single-core run (the table is sized for the keyspace,
  not per core);
* DRAM channel pressure (busy fraction of the *wall clock*, max queueing
  delay) grows with the core count — the counters PR 2 added.

Expected shape: STLT beats baseline at every core count, and both scale
sub-linearly with the shared channel saturating first for the baseline
(it makes more memory traffic per op).
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_many,
    run_once,
)

CORE_COUNTS = (1, 2, 4, 8)
FRONTENDS = ("baseline", "stlt")


def _sweep():
    configs = {
        (frontend, cores): bench_config(
            program="unordered_map", frontend=frontend, num_cores=cores)
        for frontend in FRONTENDS
        for cores in CORE_COUNTS
    }
    keys = list(configs)
    metrics = run_many([configs[k] for k in keys])
    return dict(zip(keys, metrics))


def test_ext_multicore_scalability(benchmark):
    runs = run_once(benchmark, _sweep)
    rows = []
    for frontend in FRONTENDS:
        single = runs[(frontend, 1)]
        for cores in CORE_COUNTS:
            m = runs[(frontend, cores)]
            scaling = (m["throughput"] / single["throughput"]
                       if single["throughput"] else 0.0)
            fairness = ("-" if m["fairness"] is None
                        else f"{m['fairness']:.3f}")
            miss = ("-" if m["fast_miss_rate"] is None
                    else f"{m['fast_miss_rate']:.2%}")
            rows.append([
                frontend, str(cores),
                f"{m['throughput']:.4f}",
                f"{scaling:.2f}x",
                fairness,
                f"{m['dram_busy_fraction']:.1%}",
                str(m["dram_max_queue_cycles"]),
                miss,
            ])
    print_figure(
        "Extension — core-count scalability (shared store, shared STLT)",
        ["frontend", "cores", "ops/cycle", "scaling", "fairness",
         "DRAM busy", "max queue", "table miss"],
        rows,
        notes=[
            "scaling = aggregate throughput vs the 1-core run",
            "cores contend on one DRAM channel + shared L3; L1/L2/TLB/STB"
            " are private",
        ],
    )
    for frontend in FRONTENDS:
        single = runs[(frontend, 1)]
        for cores in CORE_COUNTS:
            m = runs[(frontend, cores)]
            assert m["num_cores"] == cores
            # more cores must never lower aggregate throughput at this
            # scale (the channel adds latency but each core still works)
            if cores > 1:
                assert m["throughput"] > single["throughput"] * 0.9, (
                    f"{frontend} x{cores}: throughput collapsed")
                assert m["fairness"] is not None
                assert 0.5 < m["fairness"] <= 1.0 + 1e-9
    for cores in CORE_COUNTS:
        base = runs[("baseline", cores)]
        stlt = runs[("stlt", cores)]
        assert stlt["throughput"] > base["throughput"], (
            f"x{cores}: STLT must out-run baseline")
