"""Fig. 11: speedups brought by STLT and SLB on Redis, nine workloads.

Paper reference (zipf/latest/uniform x 64/128/256 B values): STLT brings
1.38x on average (up to ~1.4x), consistently above SLB; gains are larger
on the low-locality distributions (uniform, zipf) than on latest.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
    speedup_of,
)
from repro.sim.results import geomean

DISTRIBUTIONS = ("zipf", "latest", "uniform")
VALUE_SIZES = (64, 128, 256)


def _run_workload(distribution, value_size):
    runs = {}
    for frontend in ("baseline", "slb", "stlt"):
        config = bench_config(program="redis", frontend=frontend,
                              distribution=distribution,
                              value_size=value_size)
        runs[frontend] = run_cached(config)
    return runs


def test_fig11_redis_speedups(benchmark):
    def run_all():
        return {
            (d, v): _run_workload(d, v)
            for d in DISTRIBUTIONS for v in VALUE_SIZES
        }

    all_runs = run_once(benchmark, run_all)

    rows = []
    stlt_speedups = []
    slb_speedups = []
    for (dist, size), runs in all_runs.items():
        slb = speedup_of(runs["baseline"], runs["slb"])
        stlt = speedup_of(runs["baseline"], runs["stlt"])
        slb_speedups.append(slb)
        stlt_speedups.append(stlt)
        rows.append([f"{dist}-{size}B", f"{slb:.2f}x", f"{stlt:.2f}x"])
    rows.append(["geomean", f"{geomean(slb_speedups):.2f}x",
                 f"{geomean(stlt_speedups):.2f}x"])
    print_figure(
        "Fig. 11 — Redis speedups by SLB and STLT (9 workloads)",
        ["workload", "SLB", "STLT"],
        rows,
        notes=[
            "paper: STLT avg 1.38x, always above SLB;"
            " largest gains on zipf/uniform",
        ],
    )

    # shape assertions
    for (dist, size), runs in all_runs.items():
        slb = speedup_of(runs["baseline"], runs["slb"])
        stlt = speedup_of(runs["baseline"], runs["stlt"])
        assert stlt > 1.0, f"STLT must speed up {dist}-{size}B"
        assert stlt > slb, f"STLT must beat SLB on {dist}-{size}B"
    mean = geomean(stlt_speedups)
    assert 1.1 < mean < 2.2, f"mean Redis speedup {mean:.2f} out of band"


def test_fig11_record_size_has_little_effect(benchmark):
    """Paper: 'Record size has little effect on both STLT and SLB.'"""

    def run_sizes():
        return {v: _run_workload("zipf", v) for v in VALUE_SIZES}

    runs = run_once(benchmark, run_sizes)
    speedups = [speedup_of(runs[v]["baseline"], runs[v]["stlt"])
                for v in VALUE_SIZES]
    spread = max(speedups) - min(speedups)
    print_figure(
        "Fig. 11 (detail) — value-size sensitivity of the STLT speedup",
        ["value size", "STLT speedup"],
        [[f"{v}B", f"{s:.2f}x"] for v, s in zip(VALUE_SIZES, speedups)],
        notes=[f"spread across sizes: {spread:.2f}"],
    )
    assert spread < 0.5, "record size must have only a modest effect"
