"""Fig. 15: miss rates of the SLB cache table and STLT versus size.

Paper reference: as space grows the two tables' miss rates fall nearly
identically and approach zero by 512 MB — the conclusion being that
STLT's higher speedups (Fig. 14) come from faster address translation,
not from a lower miss rate.
"""

from benchmarks.common import print_figure, run_once
from benchmarks.size_sweep import ROW_RATIOS, ratio_labels, sweep


def test_fig15_missrate_vs_size(benchmark):
    all_runs = run_once(benchmark, sweep)

    programs = sorted({k[0] for k in all_runs})
    rows = []
    for program in programs:
        for frontend in ("slb", "stlt"):
            series = [
                all_runs[(program, ratio, frontend)]["fast_miss_rate"]
                for ratio in ROW_RATIOS
            ]
            rows.append([program, frontend] +
                        [f"{m:.2%}" for m in series])
    print_figure(
        "Fig. 15 — fast-table miss rate vs size",
        ["program", "frontend"] + ratio_labels(),
        rows,
        notes=["paper: both curves fall with size and are near zero at"
               " the largest setting"],
    )

    for program in programs:
        for frontend in ("slb", "stlt"):
            small = all_runs[(program, ROW_RATIOS[0], frontend)][
                "fast_miss_rate"]
            big = all_runs[(program, ROW_RATIOS[-1], frontend)][
                "fast_miss_rate"]
            assert big < small, (
                f"{program}/{frontend}: miss rate must fall with size"
            )
            assert big < 0.05, (
                f"{program}/{frontend}: miss rate must be near zero at"
                " the largest size"
            )
