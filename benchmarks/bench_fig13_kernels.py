"""Fig. 13: STLT and SLB speedups on the four kernel benchmarks.

Paper reference (128 B and 256 B records, three distributions): on the
hash-table kernels SLB averages 1.70x and STLT 2.42x (up to 2.6-2.9x on
zipf/uniform, ~1.7x on latest); on the tree kernels SLB averages 6.46x
and STLT reaches up to ~11-13x.  Shapes: trees >> hash tables, STLT >
SLB everywhere, latest shows the smallest gains.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
    speedup_of,
)
from repro.sim.results import geomean

HASH_PROGRAMS = ("unordered_map", "dense_hash_map")
TREE_PROGRAMS = ("ordered_map", "btree")
DISTRIBUTIONS = ("zipf", "latest", "uniform")
VALUE_SIZES = (128, 256)


def _sweep():
    out = {}
    for program in HASH_PROGRAMS + TREE_PROGRAMS:
        for dist in DISTRIBUTIONS:
            for size in VALUE_SIZES:
                runs = {
                    fe: run_cached(bench_config(program=program,
                                                frontend=fe,
                                                distribution=dist,
                                                value_size=size))
                    for fe in ("baseline", "slb", "stlt")
                }
                out[(program, dist, size)] = runs
    return out


def test_fig13_kernel_speedups(benchmark):
    all_runs = run_once(benchmark, _sweep)

    rows = []
    gains = {"hash": {"slb": [], "stlt": []},
             "tree": {"slb": [], "stlt": []}}
    for (program, dist, size), runs in sorted(all_runs.items()):
        slb = speedup_of(runs["baseline"], runs["slb"])
        stlt = speedup_of(runs["baseline"], runs["stlt"])
        family = "hash" if program in HASH_PROGRAMS else "tree"
        gains[family]["slb"].append(slb)
        gains[family]["stlt"].append(stlt)
        rows.append([program, f"{dist[0].upper()}-{size}B",
                     f"{slb:.2f}x", f"{stlt:.2f}x"])
    for family in ("hash", "tree"):
        rows.append([f"geomean ({family})",
                     "-",
                     f"{geomean(gains[family]['slb']):.2f}x",
                     f"{geomean(gains[family]['stlt']):.2f}x"])
    print_figure(
        "Fig. 13 — kernel benchmark speedups (STLT vs SLB)",
        ["program", "workload", "SLB", "STLT"],
        rows,
        notes=["paper: hash kernels SLB 1.70x / STLT 2.42x;"
               " tree kernels SLB 6.46x / STLT up to ~13x"],
    )

    # shape assertions
    for (program, dist, size), runs in all_runs.items():
        slb = speedup_of(runs["baseline"], runs["slb"])
        stlt = speedup_of(runs["baseline"], runs["stlt"])
        assert stlt > slb, f"STLT <= SLB on {program}/{dist}/{size}"
        assert stlt > 1.0
    hash_mean = geomean(gains["hash"]["stlt"])
    tree_mean = geomean(gains["tree"]["stlt"])
    assert tree_mean > 2 * hash_mean, (
        "trees must gain far more than hash tables"
    )
    # bands are generous: the absolute factor scales with the simulated
    # footprint (EXPERIMENTS.md), the ordering does not
    assert 1.1 < hash_mean < 4.5
    assert 3.0 < tree_mean < 25.0
