"""Extension: the hardware hash unit of Section III-B.

The paper: *"We also considered adding hardware support for calculating
a fast hash function. A hardware hash gains performance at the expense
of flexibility."*  The ``hw_hash`` registry entry models such a unit — a
fixed 3-cycle functional latency regardless of key length, computing the
same xxh3 value (so table behaviour is identical to the software xxh3
fast path; only the compute cost changes).

Expected shape: a small additional speedup over software xxh3 on every
program, largest where lookups are cheapest (hash cost is a larger
fraction of a hash-table lookup than of a tree walk).
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    run_cached,
    run_once,
    speedup_of,
)

PROGRAMS = ("redis", "unordered_map", "ordered_map")


def _sweep():
    out = {}
    for program in PROGRAMS:
        out[(program, "baseline")] = run_cached(
            bench_config(program=program, frontend="baseline"))
        for fast_hash in ("xxh3", "hw_hash"):
            out[(program, fast_hash)] = run_cached(
                bench_config(program=program, frontend="stlt",
                             fast_hash=fast_hash))
    return out


def test_ext_hardware_hash_unit(benchmark):
    runs = run_once(benchmark, _sweep)
    rows = []
    for program in PROGRAMS:
        base = runs[(program, "baseline")]
        sw = speedup_of(base, runs[(program, "xxh3")])
        hw = speedup_of(base, runs[(program, "hw_hash")])
        rows.append([program, f"{sw:.3f}x", f"{hw:.3f}x",
                     f"{(hw / sw - 1):+.2%}"])
    print_figure(
        "Extension — hardware hash unit vs software xxh3 fast path",
        ["program", "STLT (sw xxh3)", "STLT (hw hash)", "hw gain"],
        rows,
        notes=["Sec. III-B: hardware hashing gains performance at the"
               " expense of flexibility"],
    )
    for program in PROGRAMS:
        base = runs[(program, "baseline")]
        sw = speedup_of(base, runs[(program, "xxh3")])
        hw = speedup_of(base, runs[(program, "hw_hash")])
        assert hw >= sw * 0.999, f"{program}: hw hash must not lose"
