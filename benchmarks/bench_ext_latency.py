"""Extension: throughput-latency curves under open-loop load (PR 3).

The paper's headline is a *latency* story — STLT removes the addressing
cycles that dominate a Redis GET — but closed-loop measurement can only
show mean cycles/op.  This extension puts the measured service times
behind an open-loop arrival process (``repro.svc``): Poisson requests at
a swept offered load, round-robin over two cores, end-to-end latency =
queueing delay + measured per-op cycles.

Expected shape (classic queueing, now with simulated-microarchitecture
service times):

* p99 rises *superlinearly* as offered load approaches each front-end's
  closed-loop capacity — the hockey stick every production dashboard
  shows;
* STLT's shorter service times push the whole curve down and to the
  right: at a fixed p99 SLO (chosen as the baseline's mid-load p99),
  STLT sustains a strictly higher absolute request rate (ops/cycle)
  than the baseline — the per-op savings compound into *capacity*.
"""

from benchmarks.common import bench_config, print_figure, run_many, run_once

FRONTENDS = ("baseline", "slb", "stlt")
LOADS = (0.3, 0.5, 0.7, 0.85, 0.95)


def _sweep():
    configs = {
        (frontend, load): bench_config(
            program="unordered_map", frontend=frontend, num_cores=2,
            arrival_process="poisson", offered_load=load)
        for frontend in FRONTENDS
        for load in LOADS
    }
    keys = list(configs)
    metrics = run_many([configs[k] for k in keys])
    return dict(zip(keys, metrics))


def test_ext_latency_under_load(benchmark):
    runs = run_once(benchmark, _sweep)
    rows = []
    for frontend in FRONTENDS:
        for load in LOADS:
            m = runs[(frontend, load)]
            rows.append([
                frontend,
                f"{load:.2f}",
                f"{m['offered_rate']:.5f}",
                f"{m['achieved_throughput']:.5f}",
                f"{m['latency_p50']:.0f}",
                f"{m['latency_p99']:.0f}",
                f"{m['latency_p999']:.0f}",
            ])
    print_figure(
        "Extension — open-loop tail latency vs offered load "
        "(2 cores, Poisson, round-robin)",
        ["frontend", "load", "offered ops/cyc", "achieved", "p50",
         "p99", "p99.9"],
        rows,
        notes=[
            "latency in cycles: queueing delay + measured per-op "
            "service cycles",
            "load is relative to each front-end's own closed-loop "
            "capacity; 'offered' is the absolute rate",
        ],
    )

    # the hockey stick: approaching saturation costs superlinear p99
    for frontend in FRONTENDS:
        low = runs[(frontend, 0.3)]["latency_p99"]
        mid = runs[(frontend, 0.7)]["latency_p99"]
        high = runs[(frontend, 0.95)]["latency_p99"]
        assert high > mid > low
        assert (high - mid) > (mid - low), (
            f"{frontend}: p99 growth towards saturation should be "
            f"superlinear")

    # capacity at SLO: STLT sustains strictly more absolute load than
    # the baseline at a fixed p99 objective
    slo = runs[("baseline", 0.5)]["latency_p99"]
    def max_rate(frontend):
        rates = [runs[(frontend, load)]["offered_rate"]
                 for load in LOADS
                 if runs[(frontend, load)]["latency_p99"] <= slo]
        return max(rates, default=0.0)
    assert max_rate("stlt") > max_rate("baseline") > 0.0
