"""Extension: cluster failover — availability under a scripted crash.

The paper's address-centric thesis at fleet scale (DESIGN.md section
13): when a primary crashes, a replica is promoted and every cached
route naming the dead node is *stale by epoch* — it dies by a MOVED
validation (lazy repair) or an eager broadcast push, never by a wrong
answer.  This benchmark runs the same seeded 3-node workload three
ways — fault-free, a scripted crash+restart healed lazily, and the
same plan healed eagerly — and pins the robustness headline:

* **availability floor** — at least :data:`AVAILABILITY_FLOOR` of the
  fault run's requests still complete within the *fault-free* run's
  p99 (the CDF of the fault-run latency histogram probed at the quiet
  p99).  A scripted crash of one of three nodes may cost the tail, not
  the service;
* **the oracle verdict** — zero failover violations (every acked write
  with a live replica at ack time survived; the run would have raised
  :class:`~repro.errors.FailoverError` otherwise) and, with a replica
  configured, zero acked-write losses;
* **lazy vs eager repair** — the measurable A/B behind the
  ``repair_policy`` knob: the recorded p99 delta and the
  post-promotion MOVED counts (lazy pays redirects, eager pays route
  pushes and shows zero).

Sizes are pinned, not env-scaled: an availability floor is only
meaningful against one fixed workload.

Emits ``BENCH_failover.json`` at the repo root and **fails** (exit 1 /
assertion) if availability drops below the floor or the oracle records
a violation.  CI runs the single-seed form as the failover-smoke job.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_ext_failover          # full
    PYTHONPATH=src python -m benchmarks.bench_ext_failover --smoke  # 1 seed
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import List, Tuple

from repro.sim.config import RunConfig
from repro.cluster.service import run_cluster
from repro.svc.histogram import LatencyHistogram

#: the pinned floor: this fraction of the fault run's requests must
#: meet the fault-free run's p99 (the ISSUE's acceptance criterion)
AVAILABILITY_FLOOR = 0.90

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_failover.json"

#: the scripted outage: one of three nodes crashes mid-run and rejoins
#: a 3%-of-the-run outage window later
FAULT_PLAN = ("crash:node=1,at=0.50", "restart:node=1,at=0.53")

SEEDS = (1, 2, 3)

#: the fixed workload behind the floor (see module docstring)
BASE = dict(
    num_keys=6_000, measure_ops=1_200, frontend="stlt",
    distribution="uniform", num_cores=2, nodes=3, replicas=1,
    offered_load=0.4, net_rtt_cycles=300.0,
    failover_detect_cycles=2_000.0, cluster_timeout=4.0,
)


def _run(seed: int, plan: Tuple[str, ...] = (),
         policy: str = "lazy") -> dict:
    config = RunConfig(**BASE, seed=seed, node_fault_plan=plan,
                       repair_policy=policy)
    return run_cluster(config).cluster


def measure_seed(seed: int) -> dict:
    quiet = _run(seed)
    quiet_p99 = quiet["latency"]["p99"]
    out = {"seed": seed, "quiet_p99": quiet_p99,
           "requests": quiet["requests"]}
    for policy in ("lazy", "eager"):
        cluster = _run(seed, plan=FAULT_PLAN, policy=policy)
        hist = LatencyHistogram.from_dict(cluster["histogram"])
        failover = cluster["failover"]
        out[policy] = {
            "availability": round(hist.fraction_at_or_below(quiet_p99), 4),
            "p99": cluster["latency"]["p99"],
            "p99_inflation": round(
                cluster["latency"]["p99"] / quiet_p99, 3),
            "failed_requests": cluster["failed_requests"],
            "timeouts": cluster["resilience"]["timeouts"],
            "promotions": failover["promotions"],
            "post_promotion_moved": failover["post_promotion_moved"],
            "eager_repairs": cluster["eager_repairs"],
            "writes": cluster["writes"],
            "acked_writes": cluster["acked_writes"],
            "acked_write_losses": cluster["acked_write_losses"],
            "failover_violations": cluster["failover_violations"],
        }
    out["lazy_vs_eager_p99_delta"] = round(
        (out["eager"]["p99"] - out["lazy"]["p99"]) / out["lazy"]["p99"], 4)
    return out


def run_bench(smoke_only: bool = False) -> dict:
    seeds: List[dict] = []
    for seed in SEEDS:
        seeds.append(measure_seed(seed))
        row = seeds[-1]
        print(f"seed {seed}: quiet p99={row['quiet_p99']:.0f}  "
              f"lazy avail={row['lazy']['availability']:.1%} "
              f"p99={row['lazy']['p99']:.0f}  "
              f"eager avail={row['eager']['availability']:.1%} "
              f"p99={row['eager']['p99']:.0f}  "
              f"delta={row['lazy_vs_eager_p99_delta']:+.1%}")
        if smoke_only:
            break
    worst = min(min(row["lazy"]["availability"],
                    row["eager"]["availability"]) for row in seeds)
    deltas = [row["lazy_vs_eager_p99_delta"] for row in seeds]
    return {
        "benchmark": "failover",
        "floor": AVAILABILITY_FLOOR,
        "fault_plan": list(FAULT_PLAN),
        "worst_availability": worst,
        "lazy_vs_eager_p99_delta_mean": round(
            sum(deltas) / len(deltas), 4),
        "seeds": seeds,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def check_floor(payload: dict) -> None:
    worst = payload["worst_availability"]
    if worst < payload["floor"]:
        raise AssertionError(
            f"failover availability regressed: worst-case "
            f"{worst:.1%} of fault-run requests met the quiet p99, "
            f"below the pinned {payload['floor']:.0%} floor")
    for row in payload["seeds"]:
        for policy in ("lazy", "eager"):
            if row[policy]["failover_violations"]:
                raise AssertionError(
                    f"seed {row['seed']} {policy}: "
                    f"{row[policy]['failover_violations']} failover "
                    f"oracle violation(s) recorded")
            if row[policy]["acked_write_losses"]:
                raise AssertionError(
                    f"seed {row['seed']} {policy}: "
                    f"{row[policy]['acked_write_losses']} acked "
                    f"write(s) lost despite a configured replica")


def test_failover_availability_floor():
    """Pytest entry: one seed must hold the pinned floor."""
    payload = run_bench(smoke_only=True)
    check_floor(payload)


def main(argv: List[str]) -> int:
    smoke_only = "--smoke" in argv
    payload = run_bench(smoke_only=smoke_only)
    if not smoke_only:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    try:
        check_floor(payload)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"ok: worst availability "
          f"{payload['worst_availability']:.1%} >= "
          f"{AVAILABILITY_FLOOR:.0%} floor; lazy->eager p99 delta "
          f"{payload['lazy_vs_eager_p99_delta_mean']:+.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
