"""Extension: heterogeneous fleets — throughput per silicon dollar.

The asymmetric-scaling argument of ``repro.hetero`` (DESIGN.md section
14): a KV-lookup accelerator node is a hash pipeline plus a fixed
SRAM — :data:`~repro.hetero.capability.ACCEL_NODE_COST_UNITS` of a
full node's cost — so swapping one full node of a three-node fleet for
an accelerator should win *per cost unit* even before it wins per
node.  This benchmark runs the same seeded small-key, GET-heavy zipf
workload on two equal-node-count fleets — ``3full`` (homogeneous) and
``2full+1accel`` (mixed, capability-aware dispatch, capability oracle
armed) — and pins the headline:

* **cost-normalized floor** — mixed throughput per cost unit must be
  at least :data:`COST_FLOOR` times the homogeneous fleet's (fleet
  costs 2.25 vs 3.0 units, so the floor already holds if raw
  throughput merely stays within 10%; measured raw speedup is >1x
  because the accelerator's initiation interval beats a full node's
  per-op service time);
* **the oracle verdict** — zero capability violations: no write, no
  oversized key was ever *served* by an accelerator (the run would
  have raised :class:`~repro.errors.HeteroError` otherwise);
* **dispatch telemetry** — the accel hit fraction and the fallback
  split (capacity / SET / oversized) behind the speedup, so a
  regression is attributable.

Sizes are pinned, not env-scaled: a throughput floor is only
meaningful against one fixed workload.

Emits ``BENCH_hetero.json`` at the repo root and **fails** (exit 1 /
assertion) if the cost-normalized ratio drops below the floor or the
oracle records a violation.  CI runs the single-seed form as the
hetero-smoke job.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_ext_hetero          # full
    PYTHONPATH=src python -m benchmarks.bench_ext_hetero --smoke  # 1 seed
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import List

from repro.hetero.fleet import fleet_cost, parse_node_types
from repro.sim.config import RunConfig
from repro.cluster.service import run_cluster

#: the pinned floor: mixed-fleet throughput per cost unit over the
#: equal-node-count homogeneous fleet's (the ISSUE's acceptance
#: criterion)
COST_FLOOR = 1.2

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hetero.json"

HOMOGENEOUS = "3full"
MIXED = "2full+1accel"

SEEDS = (1, 2, 3)

#: the fixed workload behind the floor: small canonical keys, zipf
#: skew (a hot set the accelerator's key memory holds), GET-heavy
#: (the service layer's YCSB-B-style 10% write split)
BASE = dict(
    num_keys=8_000, measure_ops=1_500, frontend="stlt",
    distribution="zipf", num_cores=2, nodes=3, replicas=1,
    offered_load=2.0, net_rtt_cycles=300.0,
)


def _run(seed: int, node_types: str) -> dict:
    spec = None if node_types == HOMOGENEOUS else node_types
    config = RunConfig(**BASE, seed=seed, node_types=spec)
    return run_cluster(config).cluster


def measure_seed(seed: int) -> dict:
    homog = _run(seed, HOMOGENEOUS)
    mixed = _run(seed, MIXED)
    hetero = mixed["hetero"]
    homog_cost = fleet_cost(parse_node_types(HOMOGENEOUS))
    raw = mixed["achieved_throughput"] / homog["achieved_throughput"]
    cost_normalized = raw * homog_cost / hetero["fleet_cost_units"]
    return {
        "seed": seed,
        "requests": mixed["requests"],
        "homogeneous_throughput": homog["achieved_throughput"],
        "mixed_throughput": mixed["achieved_throughput"],
        "raw_speedup": round(raw, 4),
        "cost_normalized_speedup": round(cost_normalized, 4),
        "fleet_cost_units": hetero["fleet_cost_units"],
        "accel_hit_fraction": hetero["accel_hit_fraction"],
        "fallback_rate": hetero["fallback_rate"],
        "fallbacks": hetero["fallbacks"],
        "capability_violations": hetero["capability_violations"],
        "oracle_violations": mixed["oracle_violations"],
    }


def run_bench(smoke_only: bool = False) -> dict:
    seeds: List[dict] = []
    for seed in SEEDS:
        seeds.append(measure_seed(seed))
        row = seeds[-1]
        print(f"seed {seed}: raw={row['raw_speedup']:.2f}x  "
              f"cost-norm={row['cost_normalized_speedup']:.2f}x  "
              f"hit={row['accel_hit_fraction']:.1%} "
              f"fallback={row['fallback_rate']:.1%}  "
              f"violations={row['capability_violations']}")
        if smoke_only:
            break
    worst = min(row["cost_normalized_speedup"] for row in seeds)
    ratios = [row["cost_normalized_speedup"] for row in seeds]
    return {
        "benchmark": "hetero",
        "floor": COST_FLOOR,
        "fleets": [HOMOGENEOUS, MIXED],
        "worst_cost_normalized_speedup": worst,
        "mean_cost_normalized_speedup": round(
            sum(ratios) / len(ratios), 4),
        "seeds": seeds,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def check_floor(payload: dict) -> None:
    worst = payload["worst_cost_normalized_speedup"]
    if worst < payload["floor"]:
        raise AssertionError(
            f"hetero cost efficiency regressed: worst-case "
            f"{worst:.2f}x throughput per cost unit vs the "
            f"homogeneous fleet, below the pinned "
            f"{payload['floor']:.1f}x floor")
    for row in payload["seeds"]:
        if row["capability_violations"]:
            raise AssertionError(
                f"seed {row['seed']}: {row['capability_violations']} "
                f"capability oracle violation(s) recorded")
        if row["oracle_violations"]:
            raise AssertionError(
                f"seed {row['seed']}: {row['oracle_violations']} "
                f"routing oracle violation(s) recorded")


def test_hetero_cost_floor():
    """Pytest entry: one seed must hold the pinned floor."""
    payload = run_bench(smoke_only=True)
    check_floor(payload)


def main(argv: List[str]) -> int:
    smoke_only = "--smoke" in argv
    payload = run_bench(smoke_only=smoke_only)
    if not smoke_only:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    try:
        check_floor(payload)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"ok: worst cost-normalized speedup "
          f"{payload['worst_cost_normalized_speedup']:.2f}x >= "
          f"{COST_FLOOR:.1f}x floor (mean "
          f"{payload['mean_cost_normalized_speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
