"""Fig. 1 (right): execution-time breakdown of baseline Redis.

Paper reference: translations and address finding take over 50% of the
overall time of Redis serving YCSB GETs (10 M keys, zipf, pipelined over
a local socket).  We regenerate the breakdown from the simulator's cycle
attribution and check the addressing share.
"""

from benchmarks.common import bench_config, print_figure, run_once
from repro.sim.breakdown import ADDRESSING_CATEGORIES, run_breakdown

#: the categories Fig. 1 calls out, with the paper's qualitative story
PAPER_CLAIM = "addressing (hash + lookup + translation) > 50%"


def test_fig01_redis_breakdown(benchmark):
    def run():
        return run_breakdown(bench_config(program="redis",
                                          frontend="baseline"))

    breakdown = run_once(benchmark, run)
    rows = [
        [category, f"{share:6.1%}",
         "addressing" if category in ADDRESSING_CATEGORIES else "other"]
        for category, share in breakdown.rows()
    ]
    print_figure(
        "Fig. 1 (right) — Redis execution-time breakdown (baseline)",
        ["category", "share", "group"],
        rows,
        notes=[
            f"paper: {PAPER_CLAIM}",
            f"measured addressing share: {breakdown.addressing_share:.1%}",
        ],
    )
    assert breakdown.addressing_share > 0.5, (
        "addressing must dominate baseline Redis as in Fig. 1"
    )
