"""Shared infrastructure for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper.  Runs are expensive (each is a full trace-driven simulation), so:

* results are memoised in-process *and* in ``.bench_cache.json`` keyed by
  the full run configuration — figures that share runs (the Fig. 14/15/16
  size sweep, Fig. 11 vs Table V) reuse them;
* the scale is controlled by environment variables:

  - ``REPRO_BENCH_KEYS``  (default 50000)  — keys per store
  - ``REPRO_BENCH_OPS``   (default 6000)   — measured operations
  - ``REPRO_BENCH_FRESH`` (set to 1)       — ignore the disk cache

Each benchmark prints a paper-vs-measured table; the *shape* (who wins,
rough factors, orderings) is the reproduction target, per EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment
from repro.sim.results import format_table

BENCH_KEYS = int(os.environ.get("REPRO_BENCH_KEYS", "50000"))
BENCH_OPS = int(os.environ.get("REPRO_BENCH_OPS", "6000"))

_CACHE_PATH = Path(__file__).resolve().parent.parent / ".bench_cache.json"
_memory_cache: Dict[str, dict] = {}


def _config_key(config: RunConfig) -> str:
    fields = (
        config.program, config.frontend, config.distribution,
        config.value_size, config.num_keys, config.measure_ops,
        config.effective_warmup_ops, config.effective_stlt_rows,
        config.stlt_ways, config.fast_hash, config.effective_slb_entries,
        tuple(config.prefetchers), config.prefill, config.seed,
    )
    return repr(fields)


def _load_disk_cache() -> Dict[str, dict]:
    if os.environ.get("REPRO_BENCH_FRESH"):
        return {}
    if _CACHE_PATH.exists():
        try:
            return json.loads(_CACHE_PATH.read_text())
        except (OSError, ValueError):
            return {}
    return {}


def _store_disk_cache(cache: Dict[str, dict]) -> None:
    try:
        _CACHE_PATH.write_text(json.dumps(cache))
    except OSError:
        pass


def run_cached(config: RunConfig) -> dict:
    """Run a config (or fetch it from cache); returns a metrics dict."""
    key = _config_key(config)
    if key in _memory_cache:
        return _memory_cache[key]
    disk = _load_disk_cache()
    if key in disk:
        _memory_cache[key] = disk[key]
        return disk[key]
    result = run_experiment(config)
    metrics = {
        "cycles_per_op": result.cycles_per_op,
        "cycles": result.cycles,
        "ops": result.ops,
        "tlb_misses": result.tlb_misses,
        "cache_misses": result.cache_misses,
        "page_walks": result.page_walks,
        "dram_accesses": result.mem.dram_accesses,
        "llc_miss_rate": result.mem.llc_miss_rate,
        "fast_miss_rate": result.fast_miss_rate,
        "fast_table_bytes": result.fast_table_bytes,
        "stb_hits": result.mem.stb_hits,
        "attr": result.attr,
        "prefetches_issued": result.mem.prefetches_issued,
        "prefetch_accuracy": result.mem.prefetch_accuracy,
    }
    _memory_cache[key] = metrics
    disk = _load_disk_cache()
    disk[key] = metrics
    _store_disk_cache(disk)
    return metrics


def bench_config(**overrides) -> RunConfig:
    """A RunConfig at benchmark scale, overridable per experiment."""
    defaults = dict(num_keys=BENCH_KEYS, measure_ops=BENCH_OPS)
    defaults.update(overrides)
    return RunConfig(**defaults)


def speedup_of(baseline: dict, other: dict) -> float:
    if other["cycles_per_op"] == 0:
        return float("inf")
    return baseline["cycles_per_op"] / other["cycles_per_op"]


def reduction_of(baseline: int, other: int) -> float:
    return (baseline - other) / baseline if baseline else 0.0


def print_figure(title: str, headers: List[str], rows: List[List[str]],
                 notes: Optional[List[str]] = None) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(format_table(headers, rows))
    for note in notes or []:
        print(f"  note: {note}")
    print()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark.

    A full simulation takes seconds; repeating it for statistical rounds
    would multiply the suite's runtime for no benefit (the simulator is
    deterministic).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
