"""Shared infrastructure for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper.  Runs are expensive (each is a full trace-driven simulation), so
they are submitted through :mod:`repro.exp`:

* results live in a durable ``.bench_results.jsonl`` store keyed by a
  content hash over *all* ``RunConfig`` fields (machine model included
  — the old hand-rolled key tuple silently omitted it, so a machine
  change could hit stale entries);
* figures that share runs (the Fig. 14/15/16 size sweep, Fig. 11 vs
  Table V) reuse them through that one store;
* multi-run figures fan out over worker processes via
  :func:`run_many` (parallel results are bit-identical to serial).

Scale and execution knobs (environment variables):

  - ``REPRO_BENCH_KEYS``  (default 50000)  — keys per store
  - ``REPRO_BENCH_OPS``   (default 6000)   — measured operations
  - ``REPRO_BENCH_JOBS``  (default min(4, cpus)) — sweep workers
  - ``REPRO_BENCH_FRESH`` (set to 1)       — re-simulate everything

Each benchmark prints a paper-vs-measured table; the *shape* (who wins,
rough factors, orderings) is the reproduction target, per EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

from repro.exp import (
    ResultStore,
    SweepRunner,
    metrics_from_record,
    points_from_configs,
)
from repro.sim.config import RunConfig
from repro.sim.results import format_table

BENCH_KEYS = int(os.environ.get("REPRO_BENCH_KEYS", "50000"))
BENCH_OPS = int(os.environ.get("REPRO_BENCH_OPS", "6000"))
BENCH_JOBS = int(os.environ.get(
    "REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1))))

_STORE_PATH = Path(__file__).resolve().parent.parent / ".bench_results.jsonl"
_store: Optional[ResultStore] = None


def _fresh() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FRESH"))


def bench_store() -> ResultStore:
    """The shared durable result store for all benchmark figures.

    Under ``REPRO_BENCH_FRESH`` the store is wiped once per process, so
    everything re-simulates but figures that share runs (the size
    sweep) still reuse the fresh results within the session.
    """
    global _store
    if _store is None:
        _store = ResultStore(_STORE_PATH)
        if _fresh():
            _store.clear()
    return _store


def _runner(jobs: int) -> SweepRunner:
    return SweepRunner(store=bench_store(), jobs=jobs, retries=1)


def run_many(configs: Sequence[RunConfig]) -> List[dict]:
    """Run (or fetch) a batch of configs in parallel; metrics dicts.

    Results come back in ``configs`` order regardless of completion
    order, duplicate configs are simulated once, and a failing run
    raises (a benchmark must never chart a partial sweep).
    """
    jobs = max(1, min(BENCH_JOBS, len(configs)))
    report = _runner(jobs).run(points_from_configs(list(configs)))
    if not report.ok:
        details = "; ".join(
            f"{o.label}: {o.error}" for o in report.failed)
        raise RuntimeError(f"benchmark sweep failed: {details}")
    return [metrics_from_record(o.record) for o in report]


def run_cached(config: RunConfig) -> dict:
    """Run a config (or fetch it from the store); returns a metrics dict."""
    return run_many([config])[0]


def bench_config(**overrides) -> RunConfig:
    """A RunConfig at benchmark scale, overridable per experiment."""
    defaults = dict(num_keys=BENCH_KEYS, measure_ops=BENCH_OPS)
    defaults.update(overrides)
    return RunConfig(**defaults)


def speedup_of(baseline: dict, other: dict) -> float:
    if other["cycles_per_op"] == 0:
        return float("inf")
    return baseline["cycles_per_op"] / other["cycles_per_op"]


def reduction_of(baseline: int, other: int) -> float:
    return (baseline - other) / baseline if baseline else 0.0


def print_figure(title: str, headers: List[str], rows: List[List[str]],
                 notes: Optional[List[str]] = None) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(format_table(headers, rows))
    for note in notes or []:
        print(f"  note: {note}")
    print()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark.

    A full simulation takes seconds; repeating it for statistical rounds
    would multiply the suite's runtime for no benefit (the simulator is
    deterministic).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
