"""Fig. 16: reduction in TLB misses by STLT versus table size.

Paper reference: TLB-miss reduction is positively correlated with the
speedups of Fig. 14 — it grows with table size and tracks the speedup
trend per benchmark.  Redis is the stated exception on magnitude (its
non-indexing work dilutes the speedup even when the TLB reduction is
large).
"""

from benchmarks.common import print_figure, reduction_of, run_once
from benchmarks.size_sweep import ROW_RATIOS, ratio_labels, sweep


def test_fig16_tlb_reduction_vs_size(benchmark):
    all_runs = run_once(benchmark, sweep)

    programs = sorted({k[0] for k in all_runs})
    rows = []
    reductions = {}
    for program in programs:
        series = []
        for ratio in ROW_RATIOS:
            base = all_runs[(program, ratio, "baseline")]
            stlt = all_runs[(program, ratio, "stlt")]
            series.append(reduction_of(base["tlb_misses"],
                                       stlt["tlb_misses"]))
        reductions[program] = series
        rows.append([program] + [f"{r:+.1%}" for r in series])
    print_figure(
        "Fig. 16 — reduction in TLB misses by STLT vs size",
        ["program"] + ratio_labels(),
        rows,
        notes=["paper: reduction grows with size and correlates with the"
               " Fig. 14 speedups"],
    )

    for program, series in reductions.items():
        assert series[-1] > series[0], (
            f"{program}: TLB reduction must grow with table size"
        )
        assert series[-1] > 0.3, (
            f"{program}: large tables must cut TLB misses substantially"
        )
