"""Fig. 14: speedup sensitivity to STLT space overhead.

Paper reference (zipf, 64 B): speedups climb quickly from 16 MB to
256 MB, then flatten; STLT achieves a larger speedup than SLB for the
same number of table entries at every size, and plateaus higher.
"""

from benchmarks.common import print_figure, run_once, speedup_of
from benchmarks.size_sweep import ROW_RATIOS, ratio_labels, sweep


def test_fig14_speedup_vs_size(benchmark):
    all_runs = run_once(benchmark, sweep)

    programs = sorted({k[0] for k in all_runs})
    labels = ratio_labels()
    rows = []
    for program in programs:
        for frontend in ("slb", "stlt"):
            series = []
            for ratio in ROW_RATIOS:
                base = all_runs[(program, ratio, "baseline")]
                series.append(
                    speedup_of(base, all_runs[(program, ratio, frontend)])
                )
            rows.append([program, frontend] +
                        [f"{s:.2f}" for s in series])
    print_figure(
        "Fig. 14 — speedup vs table size (paper-equivalent sizes)",
        ["program", "frontend"] + labels,
        rows,
        notes=["paper: fast rise to ~256MB then flattening;"
               " STLT above SLB at matched entry counts"],
    )

    for program in programs:
        small = speedup_of(all_runs[(program, ROW_RATIOS[0], "baseline")],
                           all_runs[(program, ROW_RATIOS[0], "stlt")])
        big = speedup_of(all_runs[(program, ROW_RATIOS[-1], "baseline")],
                         all_runs[(program, ROW_RATIOS[-1], "stlt")])
        assert big > small, f"{program}: speedup must grow with size"
        # plateau comparison at the largest size: STLT above SLB
        slb_big = speedup_of(all_runs[(program, ROW_RATIOS[-1], "baseline")],
                             all_runs[(program, ROW_RATIOS[-1], "slb")])
        assert big > slb_big, f"{program}: STLT must plateau above SLB"
