"""Wall-clock perf trajectory of the batched execution fast path.

Unlike the figure benchmarks (which report *simulated* cycles through
the durable store), this one measures real ops/sec of the Python
simulator itself: the same config run in ``reference`` vs. ``batched``
execution mode, at several sizes, best-of-N over pre-generated op
arrays (workload generation is deterministic and identical for both
modes, so it is hoisted out of the timed region — the batched mode's
whole premise is driving pre-generated arrays through fused kernels).

Emits ``BENCH_fastpath.json`` at the repo root and **fails** (exit 1 /
assertion) if the smoke-config speedup regresses below the pinned
floor.  CI runs this as the fastpath-smoke job.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_fastpath           # full
    PYTHONPATH=src python -m benchmarks.bench_fastpath --smoke   # floor only
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from pathlib import Path
from typing import List

from repro.sim.config import RunConfig
from repro.sim.engine import Engine
from repro.sim.multicore import MultiCoreEngine
from repro.workloads.ycsb import WorkloadSpec

#: the pinned floor: batched must be at least this much faster than
#: reference on the smoke config (the ISSUE's acceptance criterion)
SPEEDUP_FLOOR = 3.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"

#: (name, config, best-of reps) — smoke first: it carries the floor
SIZES = (
    ("smoke", dict(num_keys=200, measure_ops=60, warmup_ops=120), 25),
    ("small", dict(num_keys=2_000, measure_ops=1_000,
                   warmup_ops=1_000), 5),
    ("medium", dict(num_keys=10_000, measure_ops=4_000,
                    warmup_ops=2_000), 3),
)


def measure_size(name: str, size: dict, reps: int) -> dict:
    config = RunConfig(frontend="stlt", **size)
    spec = WorkloadSpec(distribution=config.distribution,
                        value_size=config.value_size)
    # one pre-generated op array set, shared by both modes (generation
    # is deterministic per config; run() validates the shape)
    streams = MultiCoreEngine(Engine(config))._streams(spec)
    total_ops = config.total_ops * config.num_cores
    out = {"name": name, **size, "total_ops": total_ops}
    # reps are *interleaved* (ref, batched, ref, batched, ...): on a
    # shared machine a slow scheduling/frequency window then inflates
    # both modes' samples alike instead of whichever mode happened to
    # run inside it, so the best-of ratio stays honest
    best = {"reference": float("inf"), "batched": float("inf")}
    configs = {
        mode: dataclasses.replace(config, exec_mode=mode)
        for mode in best
    }
    for _ in range(reps):
        for mode, cfg in configs.items():
            mc = MultiCoreEngine(Engine(cfg))
            t0 = time.perf_counter()
            mc.run(streams=streams)
            best[mode] = min(best[mode], time.perf_counter() - t0)
    for mode, secs in best.items():
        out[mode] = {
            "seconds": round(secs, 6),
            "us_per_op": round(secs / total_ops * 1e6, 3),
            "ops_per_sec": round(total_ops / secs, 1),
        }
    out["speedup"] = round(
        out["reference"]["seconds"] / out["batched"]["seconds"], 3)
    return out


def run_bench(smoke_only: bool = False) -> dict:
    sizes: List[dict] = []
    for name, size, reps in SIZES:
        sizes.append(measure_size(name, size, reps))
        print(f"{name:>8}: ref={sizes[-1]['reference']['us_per_op']:.2f}"
              f"us/op batched={sizes[-1]['batched']['us_per_op']:.2f}"
              f"us/op speedup={sizes[-1]['speedup']:.2f}x")
        if smoke_only:
            break
    return {
        "benchmark": "fastpath",
        "floor": SPEEDUP_FLOOR,
        "smoke_speedup": sizes[0]["speedup"],
        "sizes": sizes,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def check_floor(payload: dict) -> None:
    smoke = payload["smoke_speedup"]
    if smoke < payload["floor"]:
        raise AssertionError(
            f"fast path regressed: smoke speedup {smoke:.2f}x is below "
            f"the pinned {payload['floor']:.1f}x floor")


def test_fastpath_speedup_floor():
    """Pytest entry: the smoke config must hold the pinned floor."""
    payload = run_bench(smoke_only=True)
    check_floor(payload)


def main(argv: List[str]) -> int:
    smoke_only = "--smoke" in argv
    payload = run_bench(smoke_only=smoke_only)
    if not smoke_only:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    try:
        check_floor(payload)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"ok: smoke speedup {payload['smoke_speedup']:.2f}x >= "
          f"{SPEEDUP_FLOOR:.1f}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
