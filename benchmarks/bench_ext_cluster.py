"""Extension: sharded cluster scaling and the client route cache (PR 5).

The paper accelerates one node's address translation; a deployed
key-value store is a *fleet* of such nodes behind hash-slot sharding.
This extension runs the cluster overlay — every node a full multi-core
engine, clients resolving slots through an address-centric route cache
(the cluster-scale STLT), live slot migrations firing ASK/MOVED
redirects under traffic — and pins the fleet-level analogue of the
paper's story.

Reproduction targets:

* **near-linear scaling** — aggregate achieved throughput at 8 nodes is
  at least 6x the one-node anchor under a uniform keyspace at a
  saturating offered load (the overlay adds no serial bottleneck);
* **cached routes cut the tail** — with a real client/node RTT and a
  Zipf keyspace below saturation, route-cache-on p99 is strictly lower
  than route-cache-off p99: a cached slot route skips the MOVED bounce
  exactly like a cached translation skips the page walk;
* **migration is correct and bounded** — live slot migration commits
  under running traffic with zero routing-oracle violations (stale
  routes die by MOVED/ASK redirects, never by a wrong answer) and
  inflates p99.9 by at most a bounded factor over the quiet fleet.
"""

from benchmarks.common import (
    BENCH_KEYS,
    BENCH_OPS,
    bench_config,
    print_figure,
    run_many,
    run_once,
)
from repro.exp.spec import CLUSTER_SWEEP_NODES

#: cluster runs simulate one engine *per node*; cap the per-node scale
#: so the 8-node point stays affordable (env overrides still apply
#: downward through REPRO_BENCH_KEYS / REPRO_BENCH_OPS)
CLUSTER_KEYS = min(BENCH_KEYS, 8_000)
CLUSTER_OPS = min(BENCH_OPS, 1_500)

#: the scaling pin: achieved throughput at 8 nodes vs the 1-node anchor
MIN_SCALING_AT_8 = 6.0

#: the migration pin: allowed p99.9 inflation over the quiet fleet
MAX_P999_INFLATION = 3.0

#: client/node round-trip (cycles) for the non-quiet experiments
NET_RTT = 300.0


def _cluster_config(**overrides):
    defaults = dict(
        num_keys=CLUSTER_KEYS, measure_ops=CLUSTER_OPS,
        frontend="stlt", num_cores=2, net_rtt_cycles=NET_RTT,
    )
    defaults.update(overrides)
    return bench_config(**defaults)


# ----------------------------------------------------------------------
# pin 1: throughput scaling with node count
# ----------------------------------------------------------------------

def _scaling_sweep():
    configs = {
        nodes: _cluster_config(distribution="uniform", nodes=nodes,
                               offered_load=2.0)
        for nodes in CLUSTER_SWEEP_NODES
    }
    keys = list(configs)
    metrics = run_many([configs[k] for k in keys])
    return dict(zip(keys, metrics))


def test_ext_cluster_throughput_scaling(benchmark):
    runs = run_once(benchmark, _scaling_sweep)

    anchor = runs[1]["cluster_throughput"]
    assert anchor and anchor > 0
    rows = []
    scaling = {}
    for nodes in CLUSTER_SWEEP_NODES:
        m = runs[nodes]
        scaling[nodes] = m["cluster_throughput"] / anchor
        rows.append([
            str(nodes),
            f"{m['cluster_throughput']:.5f}",
            f"{scaling[nodes]:.2f}x",
            f"{m['cluster_p99']:.0f}",
            f"{m['cluster_fairness']:.3f}",
            str(m["moved_redirects"]),
            "OK" if m["route_violations"] == 0 else "VIOLATIONS",
        ])
    print_figure(
        "Extension — cluster throughput scaling "
        "(uniform keys, saturating load, stlt nodes, RTT "
        f"{NET_RTT:g} cycles)",
        ["nodes", "req/cycle", "scaling", "p99", "fairness",
         "MOVED", "oracle"],
        rows,
        notes=[
            "each node is a full 2-core engine; the overlay replays "
            "captured per-op service times under open-loop arrivals",
            "scaling = achieved throughput over the 1-node anchor "
            "(same client/network path, one shard)",
        ],
    )

    # scaling is monotone in node count ...
    ordered = [scaling[n] for n in CLUSTER_SWEEP_NODES]
    assert all(b > a for a, b in zip(ordered, ordered[1:])), (
        f"throughput did not grow with nodes: {ordered}")
    # ... and near-linear at the top of the sweep
    assert scaling[8] >= MIN_SCALING_AT_8, (
        f"8-node scaling {scaling[8]:.2f}x below the "
        f"{MIN_SCALING_AT_8:g}x pin")
    # sharding balanced the fleet and the routing stayed coherent
    for nodes in CLUSTER_SWEEP_NODES:
        assert runs[nodes]["route_violations"] == 0
        if nodes > 1:
            assert runs[nodes]["cluster_fairness"] > 0.9


# ----------------------------------------------------------------------
# pin 2: the route cache cuts the tail
# ----------------------------------------------------------------------

def _route_cache_pair():
    configs = {
        on: _cluster_config(distribution="zipf", nodes=4,
                            offered_load=0.6, route_cache=on)
        for on in (True, False)
    }
    keys = list(configs)
    metrics = run_many([configs[k] for k in keys])
    return dict(zip(keys, metrics))


def test_ext_cluster_route_cache_tail(benchmark):
    runs = run_once(benchmark, _route_cache_pair)

    cached, uncached = runs[True], runs[False]
    rows = []
    for label, m in (("on", cached), ("off", uncached)):
        lookups = ((m["route_hits"] or 0) + (m["route_stale_hits"] or 0)
                   + (m["route_misses"] or 0))
        rows.append([
            label,
            f"{(m['route_hits'] or 0) / lookups:.0%}" if lookups else "-",
            str(m["moved_redirects"]),
            f"{m['cluster_p99']:.0f}",
            f"{m['cluster_p999']:.0f}",
            f"{m['cluster_throughput']:.5f}",
        ])
    print_figure(
        "Extension — client route cache vs bootstrap routing "
        "(4 nodes, Zipf, load 0.6, RTT "
        f"{NET_RTT:g} cycles)",
        ["route cache", "hit rate", "MOVED", "p99", "p99.9",
         "req/cycle"],
        rows,
        notes=[
            "cache off: every request bootstraps through an arbitrary "
            "node and mostly eats a MOVED bounce (~3/4 at 4 nodes)",
            "cache on: hot Zipf slots resolve from the client's table "
            "— the cluster-scale STLT hit",
        ],
    )

    # an uncached fleet bounces most requests; a cached one does not
    assert uncached["moved_redirects"] > cached["moved_redirects"]
    # the pin: cached routing strictly lowers the measured p99
    assert cached["cluster_p99"] < uncached["cluster_p99"], (
        f"route cache did not cut p99: on={cached['cluster_p99']:.0f} "
        f"off={uncached['cluster_p99']:.0f}")
    # both regimes stay coherent
    assert cached["route_violations"] == 0
    assert uncached["route_violations"] == 0


# ----------------------------------------------------------------------
# pin 3: live migration — coherent and bounded
# ----------------------------------------------------------------------

def _migration_pair():
    configs = {
        rate: _cluster_config(distribution="zipf", nodes=4,
                              offered_load=0.6, replicas=1,
                              migrate_rate=rate)
        for rate in (0.0, 0.02)
    }
    keys = list(configs)
    metrics = run_many([configs[k] for k in keys])
    return dict(zip(keys, metrics))


def test_ext_cluster_live_migration(benchmark):
    runs = run_once(benchmark, _migration_pair)

    quiet, moving = runs[0.0], runs[0.02]
    inflation = (moving["cluster_p999"] / quiet["cluster_p999"]
                 if quiet["cluster_p999"] else float("inf"))
    rows = []
    for label, m in (("quiet", quiet), ("migrating", moving)):
        rows.append([
            label,
            str(m["migrations_committed"] or 0),
            str(m["ask_redirects"] or 0),
            str(m["route_stale_hits"] or 0),
            f"{m['cluster_p99']:.0f}",
            f"{m['cluster_p999']:.0f}",
            "OK" if m["route_violations"] == 0 else "VIOLATIONS",
        ])
    print_figure(
        "Extension — live slot migration under traffic "
        "(4 nodes + 1 replica, Zipf, load 0.6)",
        ["fleet", "migrations", "ASK", "stale routes", "p99", "p99.9",
         "oracle"],
        rows,
        notes=[
            f"p99.9 inflation {inflation:.2f}x "
            f"(bound {MAX_P999_INFLATION:g}x)",
            "ASK redirects serve the migration window; committed moves "
            "invalidate cached routes by MOVED on next touch",
        ],
    )

    # migration actually happened and exercised both redirect kinds
    assert (moving["migrations_committed"] or 0) > 0
    assert (moving["ask_redirects"] or 0) > 0
    # zero lost or incoherent requests: the run would have raised
    # ClusterError otherwise, and the stored verdict agrees
    assert moving["route_violations"] == 0
    assert quiet["route_violations"] == 0
    # the tail inflation is bounded
    assert inflation <= MAX_P999_INFLATION, (
        f"migration inflated p99.9 by {inflation:.2f}x "
        f"(> {MAX_P999_INFLATION:g}x)")
