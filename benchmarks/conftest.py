"""Make ``benchmarks.*`` importable regardless of pytest rootdir."""

import sys
from pathlib import Path

_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)
