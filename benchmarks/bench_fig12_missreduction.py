"""Fig. 12: TLB-miss and cache-miss reduction on Redis (128 B values).

Paper reference: STLT reduces TLB misses by 27-31% and data-cache misses
by 5-12%; SLB manages -2.6% to 10% (TLB) and -3% to 3.7% (cache).  The
shape: STLT's reductions are positive everywhere and clearly larger than
SLB's on every distribution.
"""

from benchmarks.common import (
    bench_config,
    print_figure,
    reduction_of,
    run_cached,
    run_once,
)

DISTRIBUTIONS = ("zipf", "latest", "uniform")


def test_fig12_tlb_and_cache_miss_reduction(benchmark):
    def run_all():
        out = {}
        for dist in DISTRIBUTIONS:
            out[dist] = {
                fe: run_cached(bench_config(program="redis", frontend=fe,
                                            distribution=dist,
                                            value_size=128))
                for fe in ("baseline", "slb", "stlt")
            }
        return out

    runs = run_once(benchmark, run_all)
    rows = []
    for dist, per_fe in runs.items():
        base = per_fe["baseline"]
        rows.append([
            dist,
            f"{reduction_of(base['tlb_misses'], per_fe['slb']['tlb_misses']):+.1%}",
            f"{reduction_of(base['tlb_misses'], per_fe['stlt']['tlb_misses']):+.1%}",
            f"{reduction_of(base['cache_misses'], per_fe['slb']['cache_misses']):+.1%}",
            f"{reduction_of(base['cache_misses'], per_fe['stlt']['cache_misses']):+.1%}",
        ])
    print_figure(
        "Fig. 12 — TLB / cache miss reduction on Redis (128 B)",
        ["distribution", "SLB TLB", "STLT TLB", "SLB cache", "STLT cache"],
        rows,
        notes=["paper: STLT 27-31% TLB and 5-12% cache reduction, far"
               " above SLB"],
    )

    for dist, per_fe in runs.items():
        base = per_fe["baseline"]
        stlt_tlb = reduction_of(base["tlb_misses"],
                                per_fe["stlt"]["tlb_misses"])
        slb_tlb = reduction_of(base["tlb_misses"],
                               per_fe["slb"]["tlb_misses"])
        assert stlt_tlb > 0.10, f"STLT must cut TLB misses on {dist}"
        assert stlt_tlb > slb_tlb, f"STLT must beat SLB on {dist} TLB"
        stlt_cache = reduction_of(base["cache_misses"],
                                  per_fe["stlt"]["cache_misses"])
        assert stlt_cache > 0.0, f"STLT must cut cache misses on {dist}"
