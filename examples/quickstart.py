#!/usr/bin/env python3
"""Quickstart: accelerate one hash-table store with STLT.

Builds a small key-value store over the simulated memory hierarchy, runs
a zipfian GET workload three ways — unmodified, with the SLB software
cache, and with STLT — and prints the speedups plus where the cycles
went.  This is the whole public API surface in ~40 lines of user code.

Run:
    python examples/quickstart.py
"""

from repro import RunConfig, run_experiment, speedup


def main() -> None:
    shared = dict(
        program="unordered_map",   # GCC-style chained hash table
        distribution="zipf",       # YCSB zipfian, alpha = 0.99
        value_size=64,
        num_keys=30_000,
        measure_ops=5_000,
    )

    print("Simulating three front-ends (this takes a few seconds)...")
    baseline = run_experiment(RunConfig(frontend="baseline", **shared))
    slb = run_experiment(RunConfig(frontend="slb", **shared))
    stlt = run_experiment(RunConfig(frontend="stlt", **shared))

    print()
    print(f"{'front-end':<10} {'cycles/op':>10} {'TLB misses':>11} "
          f"{'page walks':>11} {'table miss':>11}")
    for result in (baseline, slb, stlt):
        miss = ("-" if result.fast_miss_rate is None
                else f"{result.fast_miss_rate:.2%}")
        print(f"{result.frontend:<10} {result.cycles_per_op:>10.1f} "
              f"{result.tlb_misses:>11} {result.page_walks:>11} "
              f"{miss:>11}")

    print()
    print(f"SLB  speedup: {speedup(baseline, slb):.2f}x  "
          f"(software cache: saves traversals, still walks page tables)")
    print(f"STLT speedup: {speedup(baseline, stlt):.2f}x  "
          f"(address-centric: loadVA + STB skip the walks too)")

    print()
    print("Where STLT cycles went (measured window):")
    total = stlt.cycles
    for category, cycles in sorted(stlt.attr.items(),
                                   key=lambda kv: -kv[1]):
        print(f"  {category:<12} {cycles / total:6.1%}")


if __name__ == "__main__":
    main()
