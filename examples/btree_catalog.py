#!/usr/bin/env python3
"""Ordered-index scenario: a product catalog on a B-tree, plus STLT.

The paper's Section III-F points out that STLT accelerates *any* index
with key -> record semantics, not just hash tables, and Fig. 13 shows
the tree structures gaining the most (up to ~13x) because every level of
a tree traversal is a dependent pointer chase through cold TLB entries.

This example builds a catalog keyed by zero-padded SKU strings on the
cpp-btree-style B-tree, then:

  1. compares point-lookup cost with and without STLT,
  2. shows the record-movement protocol: a product's description grows,
     the record reallocates, and one ``insertSTLT`` refreshes the row,
  3. demonstrates that ordered iteration (range scans) still bypasses
     STLT and works on the underlying structure.

Run:
    python examples/btree_catalog.py
"""

from repro import RunConfig, speedup
from repro.sim.engine import Engine

WORKLOAD = dict(
    program="btree",
    distribution="zipf",
    value_size=128,
    num_keys=20_000,
    measure_ops=4_000,
)


def main() -> None:
    print("Building the catalog twice (baseline and STLT)...")
    baseline_engine = Engine(RunConfig(frontend="baseline", **WORKLOAD))
    stlt_engine = Engine(RunConfig(frontend="stlt", **WORKLOAD))
    baseline = baseline_engine.run()
    accelerated = stlt_engine.run()

    print()
    print("1) Point lookups (zipfian SKU popularity):")
    print(f"   baseline: {baseline.cycles_per_op:9.1f} cycles/lookup "
          f"({baseline.tlb_misses} TLB misses)")
    print(f"   STLT    : {accelerated.cycles_per_op:9.1f} cycles/lookup "
          f"({accelerated.tlb_misses} TLB misses)")
    print(f"   speedup : {speedup(baseline, accelerated):.2f}x "
          "(trees gain the most — Fig. 13)")

    print()
    print("2) Record movement protocol (Sec. III-F):")
    ctx = stlt_engine.ctx
    frontend = stlt_engine.frontend
    record = stlt_engine.records[7]
    key = record.key
    frontend.get(key)                      # row is hot
    hits_before = frontend.fast_hits
    stlt_engine.index.remove(key)
    old_va = ctx.records.move(record, new_value_size=512)
    stlt_engine.index.build_insert(key, record)
    frontend.on_record_moved(record, old_va)   # the one-line protocol
    result = frontend.get(key)
    assert result is record and result.value_size == 512
    print(f"   moved {key.decode()} from {old_va:#x} to {record.va:#x}; "
          f"fast path hit again: {frontend.fast_hits == hits_before + 1}")

    print()
    print("3) Range scan on the underlying B-tree (STLT-independent):")
    node = stlt_engine.index.root
    first_keys = []

    def leftmost(n):
        while n.children:
            n = n.children[0]
        return n

    leaf = leftmost(node)
    for k in leaf.keys[:5]:
        first_keys.append(k.decode())
    print(f"   first SKUs in order: {first_keys}")


if __name__ == "__main__":
    main()
