#!/usr/bin/env python3
"""Multi-index scenario: two stores sharing the process's single STLT.

A process gets exactly one STLT (Section III-F).  An application with a
user table *and* a session table must therefore share it — and because
both tables may use the same key bytes for different records, the
integers fed to loadVA/insertSTLT must be disambiguated by replacing the
low bits of the sub-integer with a per-table ID (Fig. 10).

The example demonstrates the failure without IDs (cross-table aliasing
returns the wrong record!) and the fix with them.

Run:
    python examples/shared_stlt.py
"""

from repro.core.multi_table import SharedSTLTNamespace
from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.hashes.registry import get_hash
from repro.kvs import make_index
from repro.kvs.base import SimContext
from repro.sim.frontend import STLTFrontend
from repro.workloads.keys import key_bytes

NUM_KEYS = 4_000


def build_store(ctx, tag: bytes):
    """A store whose records carry a tag so aliasing is observable."""
    index = make_index("unordered_map", ctx, expected_keys=NUM_KEYS)
    records = {}
    for i in range(NUM_KEYS):
        key = key_bytes(i)
        rec = ctx.records.create(key, 32)
        rec.tag = tag  # type: ignore[attr-defined]
        index.build_insert(key, rec)
        records[i] = rec
    return index, records


def run(with_ids: bool) -> int:
    ctx = SimContext.create(slow_hash="murmur")
    stu = STU(ctx.mem)
    OSInterface(ctx.space, ctx.mem, stu).stlt_alloc(1 << 14)
    fast = get_hash("xxh3")

    users_index, users = build_store(ctx, b"user-table")
    sessions_index, sessions = build_store(ctx, b"session-table")

    if with_ids:
        ns = SharedSTLTNamespace(id_bits=1)
        uid, sid = ns.register(), ns.register()
        fe_users = STLTFrontend(
            ctx, users_index, stu, fast,
            integer_transform=lambda h: ns.transform(h, uid))
        fe_sessions = STLTFrontend(
            ctx, sessions_index, stu, fast,
            integer_transform=lambda h: ns.transform(h, sid))
    else:
        fe_users = STLTFrontend(ctx, users_index, stu, fast)
        fe_sessions = STLTFrontend(ctx, sessions_index, stu, fast)

    # interleaved traffic on the same key bytes
    for i in range(NUM_KEYS):
        fe_users.get(key_bytes(i))
    wrong = 0
    for i in range(NUM_KEYS):
        got = fe_sessions.get(key_bytes(i))
        if got is not sessions[i]:
            wrong += 1
    return wrong


def main() -> None:
    print("Two stores, same key bytes, one shared STLT.")
    print()
    wrong = run(with_ids=False)
    print(f"WITHOUT table IDs: {wrong} of {NUM_KEYS} session lookups "
          "returned the USER record (key aliasing, Fig. 10's hazard)")
    wrong = run(with_ids=True)
    print(f"WITH table IDs   : {wrong} of {NUM_KEYS} lookups wrong "
          "(the sub-integer manipulation keeps the tables apart)")


if __name__ == "__main__":
    main()
