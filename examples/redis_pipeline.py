#!/usr/bin/env python3
"""Session-store scenario: a Redis-like server under a YCSB-D workload.

Models the use case from the paper's introduction — a cloud session
store where clients pipeline requests over a fast interconnect, so the
server-side data-addressing path dominates.  The workload follows YCSB's
"latest" distribution: 5% of operations insert fresh sessions and reads
concentrate on the newest ones.

The example reports, per front-end:
  * throughput in simulated cycles per command,
  * the execution-time breakdown (compare with Fig. 1 of the paper),
  * STLT coherence activity (the IPB at work) when the OS migrates pages
    mid-run.

Run:
    python examples/redis_pipeline.py
"""

from repro import RunConfig, run_experiment, speedup
from repro.sim.breakdown import run_breakdown

WORKLOAD = dict(
    program="redis",
    distribution="latest",
    value_size=128,
    num_keys=30_000,
    measure_ops=5_000,
)


def main() -> None:
    print("1) Baseline Redis — where does a GET's time go?")
    breakdown = run_baseline_breakdown()
    for category, share in breakdown.rows():
        print(f"   {category:<12} {share:6.1%}")
    print(f"   -> addressing share: {breakdown.addressing_share:.1%} "
          "(the paper's Fig. 1 reports >50%)")

    print()
    print("2) Acceleration on the pipelined session store (latest, 5% SET):")
    baseline = run_experiment(RunConfig(frontend="baseline", **WORKLOAD))
    slb = run_experiment(RunConfig(frontend="slb", **WORKLOAD))
    stlt = run_experiment(RunConfig(frontend="stlt", **WORKLOAD))
    print(f"   baseline : {baseline.cycles_per_op:8.1f} cycles/command")
    print(f"   SLB      : {slb.cycles_per_op:8.1f} cycles/command "
          f"({speedup(baseline, slb):.2f}x)")
    print(f"   STLT     : {stlt.cycles_per_op:8.1f} cycles/command "
          f"({speedup(baseline, stlt):.2f}x)")
    print(f"   STLT table miss rate: {stlt.fast_miss_rate:.2%} "
          "(SET-inserted sessions are pre-inserted, Sec. III-G)")

    print()
    print("3) Translation traffic (why STLT wins):")
    for result in (baseline, slb, stlt):
        print(f"   {result.frontend:<9} TLB misses={result.tlb_misses:<6} "
              f"page walks={result.page_walks:<6} "
              f"STB hits={result.mem.stb_hits}")


def run_baseline_breakdown():
    return run_breakdown(RunConfig(frontend="baseline", **WORKLOAD))


if __name__ == "__main__":
    main()
