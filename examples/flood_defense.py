#!/usr/bin/env python3
"""Security scenario: a hash-flooding attack and STLT's two defences.

Section II: key-value stores adopt expensive attack-resistant hashes
(SipHash) because an attacker who understands the hash can flood one
bucket with colliding keys.  Section III-H argues STLT lets the *fast
path* use a cheap hash safely, because:

  1. collisions on the STLT fast path merely fall back to the slow path
     (whose attack-resistant hash still protects the real table), adding
     only bounded constant overhead per request; and
  2. the runtime performance monitor notices when the fast path stops
     paying for itself and switches STLT off entirely.

This example stages the attack and shows both defences working.

Run:
    python examples/flood_defense.py
"""

from repro import RunConfig
from repro.core.monitor import PerformanceMonitor
from repro.sim.engine import Engine
from repro.workloads.keys import key_bytes

STORE = dict(
    program="unordered_map",
    distribution="zipf",
    value_size=64,
    num_keys=20_000,
    measure_ops=2_000,
)


def main() -> None:
    engine = Engine(RunConfig(frontend="stlt", **STORE))
    ctx, frontend, stu = engine.ctx, engine.frontend, engine.stu

    print("1) Honest traffic: warm the fast path")
    for i in range(2_000):
        frontend.get(key_bytes(i % STORE["num_keys"]))
    print(f"   fast-path miss rate: {frontend.fast_miss_rate:.2%}")

    print()
    print("2) Flood: requests for absent keys (all fast-path misses)")
    cycles_before = ctx.mem.now
    inserts_before = stu.insert_count
    for i in range(2_000):
        result = frontend.get(key_bytes(10_000_000 + i))
        assert result is None
    flood_cost = (ctx.mem.now - cycles_before) / 2_000
    print(f"   cost per flood request: {flood_cost:.0f} cycles "
          "(bounded: one loadVA miss + the slow path)")
    print(f"   STLT rows inserted by the flood: "
          f"{stu.insert_count - inserts_before} (absent keys are never "
          "inserted)")

    print()
    print("3) Monitor defence: dynamic switch-off under sustained flood")
    monitor = PerformanceMonitor(stu, window_ops=256, tolerance=0.0)
    i = 20_000_000
    for _ in range(4 * 256):
        frontend.get(key_bytes(i))
        monitor.record_op()
        i += 1
    state = "ENABLED" if monitor.stlt_enabled else "DISABLED"
    print(f"   after {monitor.decisions} monitor decision(s), "
          f"STLT is {state}")

    print()
    print("4) Service restored for legitimate keys either way:")
    hit = frontend.get(key_bytes(42))
    print(f"   GET user...42 -> {hit is engine.records[42]}")


if __name__ == "__main__":
    main()
